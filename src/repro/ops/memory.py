"""Memory operators: layout manipulation and data movement.

Two families, mirroring real framework behaviour (and the paper's analysis of
why ViT is norm-dominated while Swin is memory-dominated):

* **metadata-only views** (`Reshape`, `View`, `Permute`, `Transpose`,
  `Expand`, `Squeeze`, `Unsqueeze`, `Split`, `Slice`) — no device kernel is
  launched; their cost is host-side dispatch time, which the hardware model
  charges separately;
* **materializing ops** (`Contiguous`, `Concat`, `Roll`, `Pad`) — real
  memory-bound copy kernels.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.ir.tensor import TensorSpec, normalize_axis
from repro.ops.base import OpCategory, Operator


class _MemoryBase(Operator):
    category = OpCategory.MEMORY


class Reshape(_MemoryBase):
    """Change the logical shape; one ``-1`` wildcard dimension is allowed."""

    kind = "reshape"
    is_metadata_only = True

    def __init__(self, shape: tuple[int, ...]):
        self.shape = tuple(shape)
        if sum(1 for d in self.shape if d == -1) > 1:
            raise ShapeError(f"reshape allows at most one -1, got {self.shape}")

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        (x,) = inputs
        target = self._resolve(x.numel)
        if math.prod(target) != x.numel:
            raise ShapeError(f"cannot reshape {x.shape} ({x.numel} elems) to {self.shape}")
        return (x.with_shape(target),)

    def _resolve(self, numel: int) -> tuple[int, ...]:
        if -1 not in self.shape:
            return self.shape
        known = math.prod(d for d in self.shape if d != -1)
        if known == 0 or numel % known:
            raise ShapeError(f"cannot infer -1 in reshape to {self.shape} from {numel} elems")
        return tuple(numel // known if d == -1 else d for d in self.shape)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        (x,) = inputs
        return (x.reshape(self._resolve(x.size)),)

    def describe(self) -> str:
        return f"{self.kind}({self.shape})"


class View(Reshape):
    """torch ``.view`` — identical semantics to reshape, distinct profile name."""

    kind = "view"


class Permute(_MemoryBase):
    """Reorder dimensions (lazy in eager frameworks — a stride change)."""

    kind = "permute"
    is_metadata_only = True

    def __init__(self, dims: tuple[int, ...]):
        self.dims = tuple(dims)
        if sorted(self.dims) != list(range(len(self.dims))):
            raise ShapeError(f"permute dims must be a permutation, got {self.dims}")

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        (x,) = inputs
        if x.rank != len(self.dims):
            raise ShapeError(f"permute dims {self.dims} do not match rank {x.rank}")
        return (x.with_shape(tuple(x.shape[d] for d in self.dims)),)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        return (np.transpose(inputs[0], self.dims),)

    def describe(self) -> str:
        return f"permute{self.dims}"


class Transpose(_MemoryBase):
    """Swap two dimensions (torch ``transpose(a, b)``)."""

    kind = "transpose"
    is_metadata_only = True

    def __init__(self, dim0: int, dim1: int):
        self.dim0 = dim0
        self.dim1 = dim1

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        (x,) = inputs
        a = normalize_axis(self.dim0, x.rank)
        b = normalize_axis(self.dim1, x.rank)
        shape = list(x.shape)
        shape[a], shape[b] = shape[b], shape[a]
        return (x.with_shape(tuple(shape)),)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        (x,) = inputs
        return (np.swapaxes(x, self.dim0, self.dim1),)

    def describe(self) -> str:
        return f"transpose({self.dim0},{self.dim1})"


class Contiguous(_MemoryBase):
    """Materialize a strided view into contiguous storage — a real copy kernel.

    This is the memory operator that dominates Swin Transformer profiles: the
    shifted-window attention produces strided layouts that must be compacted
    before each GEMM.
    """

    kind = "contiguous"
    is_metadata_only = False

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        return (inputs[0],)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        return (np.ascontiguousarray(inputs[0]),)


class Expand(_MemoryBase):
    """Broadcast singleton dims to a larger shape without copying."""

    kind = "expand"
    is_metadata_only = True

    def __init__(self, shape: tuple[int, ...]):
        self.shape = tuple(shape)

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        (x,) = inputs
        if len(self.shape) < x.rank:
            raise ShapeError(f"expand target {self.shape} has lower rank than {x.shape}")
        padded = (1,) * (len(self.shape) - x.rank) + x.shape
        for have, want in zip(padded, self.shape):
            if have != want and have != 1 and want != -1:
                raise ShapeError(f"cannot expand {x.shape} to {self.shape}")
        target = tuple(h if w == -1 else w for h, w in zip(padded, self.shape))
        return (x.with_shape(target),)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        (x,) = inputs
        spec = self.infer_spec([TensorSpec(x.shape)])[0]
        return (np.broadcast_to(x, spec.shape),)

    def describe(self) -> str:
        return f"expand({self.shape})"


class Squeeze(_MemoryBase):
    """Drop a singleton dimension."""

    kind = "squeeze"
    is_metadata_only = True

    def __init__(self, dim: int):
        self.dim = dim

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        (x,) = inputs
        axis = normalize_axis(self.dim, x.rank)
        if x.shape[axis] != 1:
            raise ShapeError(f"squeeze dim {self.dim} of {x.shape} is not 1")
        return (x.with_shape(x.shape[:axis] + x.shape[axis + 1 :]),)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        return (np.squeeze(inputs[0], axis=self.dim),)


class Unsqueeze(_MemoryBase):
    """Insert a singleton dimension."""

    kind = "unsqueeze"
    is_metadata_only = True

    def __init__(self, dim: int):
        self.dim = dim

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        (x,) = inputs
        axis = self.dim if self.dim >= 0 else self.dim + x.rank + 1
        if not 0 <= axis <= x.rank:
            raise ShapeError(f"unsqueeze dim {self.dim} out of range for {x.shape}")
        return (x.with_shape(x.shape[:axis] + (1,) + x.shape[axis:]),)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        return (np.expand_dims(inputs[0], axis=self.dim),)


class Split(_MemoryBase):
    """Split along an axis into equal chunks (views, like torch ``split``)."""

    kind = "split"
    is_metadata_only = True

    def __init__(self, sections: int, dim: int):
        if sections <= 0:
            raise ShapeError("split sections must be positive")
        self.sections = sections
        self.dim = dim

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        (x,) = inputs
        axis = normalize_axis(self.dim, x.rank)
        if x.shape[axis] % self.sections:
            raise ShapeError(f"cannot split dim {axis} of {x.shape} into {self.sections}")
        chunk = x.shape[axis] // self.sections
        spec = x.with_shape(x.shape[:axis] + (chunk,) + x.shape[axis + 1 :])
        return tuple(spec for _ in range(self.sections))

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        return tuple(np.split(inputs[0], self.sections, axis=self.dim))

    def describe(self) -> str:
        return f"split({self.sections}, dim={self.dim})"


class Slice(_MemoryBase):
    """Take ``[start:stop]`` along one axis (a view)."""

    kind = "slice"
    is_metadata_only = True

    def __init__(self, dim: int, start: int, stop: int):
        if stop <= start or start < 0:
            raise ShapeError(f"bad slice [{start}:{stop}]")
        self.dim = dim
        self.start = start
        self.stop = stop

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        (x,) = inputs
        axis = normalize_axis(self.dim, x.rank)
        if self.stop > x.shape[axis]:
            raise ShapeError(f"slice [{self.start}:{self.stop}] exceeds dim {x.shape[axis]}")
        size = self.stop - self.start
        return (x.with_shape(x.shape[:axis] + (size,) + x.shape[axis + 1 :]),)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        (x,) = inputs
        index = [slice(None)] * x.ndim
        index[self.dim] = slice(self.start, self.stop)
        return (x[tuple(index)],)

    def describe(self) -> str:
        return f"slice(dim={self.dim}, [{self.start}:{self.stop}])"


class Concat(_MemoryBase):
    """Concatenate along an axis — a materializing copy kernel."""

    kind = "concat"
    is_metadata_only = False

    def __init__(self, dim: int):
        self.dim = dim

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        if not inputs:
            raise ShapeError("concat needs at least one input")
        first = inputs[0]
        axis = normalize_axis(self.dim, first.rank)
        total = 0
        for spec in inputs:
            if spec.rank != first.rank or spec.dtype != first.dtype:
                raise ShapeError("concat inputs must share rank and dtype")
            for d in range(first.rank):
                if d != axis and spec.shape[d] != first.shape[d]:
                    raise ShapeError(f"concat mismatch at dim {d}: {spec.shape} vs {first.shape}")
            total += spec.shape[axis]
        return (first.with_shape(first.shape[:axis] + (total,) + first.shape[axis + 1 :]),)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        return (np.concatenate(list(inputs), axis=self.dim),)

    def describe(self) -> str:
        return f"concat(dim={self.dim})"


class Roll(_MemoryBase):
    """Cyclic shift along spatial dims (Swin's shifted windows) — a real copy."""

    kind = "roll"
    is_metadata_only = False

    def __init__(self, shifts: tuple[int, ...], dims: tuple[int, ...]):
        if len(shifts) != len(dims):
            raise ShapeError("roll shifts and dims must align")
        self.shifts = tuple(shifts)
        self.dims = tuple(dims)

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        return (inputs[0],)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        return (np.roll(inputs[0], self.shifts, axis=self.dims),)

    def describe(self) -> str:
        return f"roll({self.shifts}, dims={self.dims})"


class Pad(_MemoryBase):
    """Zero-pad spatial dims — a materializing kernel."""

    kind = "pad"
    is_metadata_only = False

    def __init__(self, padding: tuple[tuple[int, int], ...]):
        self.padding = tuple(tuple(p) for p in padding)

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        (x,) = inputs
        if len(self.padding) != x.rank:
            raise ShapeError(f"pad spec {self.padding} does not match rank {x.rank}")
        shape = tuple(d + lo + hi for d, (lo, hi) in zip(x.shape, self.padding))
        return (x.with_shape(shape),)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        return (np.pad(inputs[0], self.padding),)

    def describe(self) -> str:
        return f"pad({self.padding})"
