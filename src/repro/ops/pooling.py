"""Pooling operators over NCHW tensors (reported under "Misc" in the paper)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.ir.tensor import TensorSpec
from repro.ops.base import OpCategory, OpCost, Operator


class _Pool2dBase(Operator):
    category = OpCategory.POOLING

    def __init__(self, kernel_size: int, stride: int | None = None, padding: int = 0):
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        (x,) = inputs
        if x.rank != 4:
            raise ShapeError(f"{self.kind} expects NCHW, got {x.shape}")
        n, c, h, w = x.shape
        ho = (h + 2 * self.padding - self.kernel_size) // self.stride + 1
        wo = (w + 2 * self.padding - self.kernel_size) // self.stride + 1
        if ho <= 0 or wo <= 0:
            raise ShapeError(f"{self.kind} output collapses for input {x.shape}")
        return (x.with_shape((n, c, ho, wo)),)

    def cost(self, inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec]) -> OpCost:
        out = outputs[0]
        window = self.kernel_size * self.kernel_size
        return OpCost(
            flops=out.numel * window,
            bytes_read=inputs[0].nbytes,
            bytes_written=out.nbytes,
        )

    def _windows(self, x: np.ndarray) -> np.ndarray:
        """Stack pooling windows into (..., kh*kw) for reduction."""
        if self.padding:
            pad_value = -np.inf if isinstance(self, MaxPool2d) else 0.0
            x = np.pad(
                x,
                ((0, 0), (0, 0), (self.padding, self.padding), (self.padding, self.padding)),
                constant_values=pad_value,
            )
        n, c, h, w = x.shape
        k, s = self.kernel_size, self.stride
        ho = (h - k) // s + 1
        wo = (w - k) // s + 1
        stack = np.empty((n, c, ho, wo, k * k), dtype=x.dtype)
        for i in range(k):
            for j in range(k):
                stack[..., i * k + j] = x[:, :, i : i + s * ho : s, j : j + s * wo : s]
        return stack

    def describe(self) -> str:
        return f"{self.kind}(k={self.kernel_size}, s={self.stride}, p={self.padding})"


class MaxPool2d(_Pool2dBase):
    kind = "max_pool2d"

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        (x,) = inputs
        return (self._windows(x).max(axis=-1).astype(x.dtype, copy=False),)


class AvgPool2d(_Pool2dBase):
    kind = "avg_pool2d"

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        (x,) = inputs
        return (self._windows(x).mean(axis=-1).astype(x.dtype, copy=False),)


class AdaptiveAvgPool2d(Operator):
    """Pool NCHW spatial dims down to a fixed output size (ResNet's head)."""

    kind = "adaptive_avg_pool2d"
    category = OpCategory.POOLING

    def __init__(self, output_size: int = 1):
        self.output_size = output_size

    def infer_spec(self, inputs: Sequence[TensorSpec]) -> tuple[TensorSpec, ...]:
        self._expect_inputs(inputs, 1, self.kind)
        (x,) = inputs
        if x.rank != 4:
            raise ShapeError(f"adaptive_avg_pool2d expects NCHW, got {x.shape}")
        n, c = x.shape[:2]
        return (x.with_shape((n, c, self.output_size, self.output_size)),)

    def run(self, inputs: Sequence[np.ndarray], weights: dict[str, np.ndarray]) -> tuple[np.ndarray, ...]:
        (x,) = inputs
        n, c, h, w = x.shape
        size = self.output_size
        out = np.empty((n, c, size, size), dtype=x.dtype)
        for i in range(size):
            for j in range(size):
                y0, y1 = h * i // size, max(h * (i + 1) // size, h * i // size + 1)
                x0, x1 = w * j // size, max(w * (j + 1) // size, w * j // size + 1)
                out[:, :, i, j] = x[:, :, y0:y1, x0:x1].mean(axis=(2, 3))
        return (out,)

    def cost(self, inputs: Sequence[TensorSpec], outputs: Sequence[TensorSpec]) -> OpCost:
        return OpCost(
            flops=inputs[0].numel,
            bytes_read=inputs[0].nbytes,
            bytes_written=outputs[0].nbytes,
        )

    def describe(self) -> str:
        return f"adaptive_avg_pool2d({self.output_size})"
