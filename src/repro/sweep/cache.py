"""Memoization layer for the sweep engine: graphs, plans, memory, transforms.

The figure/table harnesses sweep large cross-products in which most of the
per-point work is identical: the same model graph is rebuilt for every
platform, the same plan re-lowered for every device combination, and the same
liveness walk repeated per profile.  :class:`PlanCache` memoizes the four
expensive, structurally-pure stages behind explicit, size-bounded LRU maps:

* ``build_model``       keyed by ``(model, batch_size, overrides)``
* ``DeploymentFlow.lower`` keyed by
  ``(flow.pipeline_signature(), graph.content_hash(), use_gpu)``
* ``profile_memory``    keyed by ``graph.content_hash()``
* graph transforms (e.g. LLM.int8()) keyed by ``(name, graph.content_hash())``

Correctness rests on :meth:`repro.ir.graph.Graph.content_hash`: any mutation
of a graph changes its hash, so stale plan/memory entries can never be
returned for a modified graph (they simply age out of the LRU).

A process-global :data:`PLAN_CACHE` serves the profiler and the sweep runner;
worker processes of a parallel sweep each get their own instance.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.models import build_model

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.flows.base import DeploymentFlow
    from repro.flows.plan import ExecutionPlan
    from repro.ir.graph import Graph
    from repro.runtime.memory import MemoryProfile

#: registered graph transforms usable from sweep specs (name -> callable
#: returning an object with ``.graph`` and ``.stats``, like QuantizedModel).
_TRANSFORMS: dict[str, Any] = {}


def register_transform(name: str, fn: Any, replace: bool = False) -> None:
    """Register a graph transform for use in sweep specs (e.g. "llm-int8")."""
    if name in _TRANSFORMS and not replace:
        raise ValueError(f"transform {name!r} already registered")
    _TRANSFORMS[name] = fn


def get_transform(name: str) -> Any:
    try:
        return _TRANSFORMS[name]
    except KeyError:
        raise KeyError(
            f"unknown transform {name!r}; known: {sorted(_TRANSFORMS)}"
        ) from None


def _register_builtin_transforms() -> None:
    from repro.quant import quantize_llm_int8

    register_transform("llm-int8", quantize_llm_int8, replace=True)


@dataclass
class CacheStats:
    """Hit/miss counters per memoized stage."""

    hits: dict[str, int] = field(default_factory=dict)
    misses: dict[str, int] = field(default_factory=dict)
    evictions: int = 0

    def hit(self, kind: str) -> None:
        self.hits[kind] = self.hits.get(kind, 0) + 1

    def miss(self, kind: str) -> None:
        self.misses[kind] = self.misses.get(kind, 0) + 1

    def snapshot(self) -> dict[str, object]:
        return {
            "hits": dict(self.hits),
            "misses": dict(self.misses),
            "evictions": self.evictions,
        }

    def delta_since(self, before: dict[str, object]) -> dict[str, object]:
        """Activity between an earlier :meth:`snapshot` and now."""
        current = self.snapshot()

        def diff(kind: str) -> dict[str, int]:
            prior: dict[str, int] = before.get(kind, {})  # type: ignore[assignment]
            now: dict[str, int] = current[kind]  # type: ignore[assignment]
            out = {k: v - prior.get(k, 0) for k, v in now.items()}
            return {k: v for k, v in out.items() if v}

        return {
            "hits": diff("hits"),
            "misses": diff("misses"),
            "evictions": current["evictions"] - int(before.get("evictions", 0)),  # type: ignore[arg-type]
        }


class PlanCache:
    """Size-bounded LRU cache over the build -> lower -> profile pipeline."""

    def __init__(self, max_entries: int = 256):
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.Lock()
        self._enabled = True

    # -- generic LRU plumbing ----------------------------------------------

    def _get(self, key: tuple) -> object | None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hit(key[0])
                return self._entries[key]
            self.stats.miss(key[0])
            return None

    def _peek(self, key: tuple) -> object | None:
        """Lookup without touching LRU order or hit/miss counters."""
        with self._lock:
            return self._entries.get(key)

    def _put(self, key: tuple, value: object) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    @contextmanager
    def disabled(self) -> Iterator[None]:
        """Temporarily bypass the cache (used by benchmarks to measure cold paths)."""
        previous = self._enabled
        self._enabled = False
        try:
            yield
        finally:
            self._enabled = previous

    # -- memoized stages ----------------------------------------------------

    def graph(self, model: str, batch_size: int = 1, **overrides) -> "Graph":
        """Memoized ``build_model``; overrides must be hashable (e.g. seq_len)."""
        if not self._enabled:
            return build_model(model, batch_size=batch_size, **overrides)
        key = ("graph", model, batch_size, tuple(sorted(overrides.items())))
        entry = self._get(key)
        if entry is not None:
            cached, stamp = entry
            # cached graphs are shared objects; if a caller mutated one, its
            # memoized hash was cleared and no longer matches the stamp —
            # rebuild fresh instead of handing out the modified structure.
            if cached.content_hash() == stamp:
                return cached
        cached = build_model(model, batch_size=batch_size, **overrides)
        # registry builders are deterministic, so the build key identifies
        # the structure exactly; stamping it as the content hash spares a
        # full structural walk per graph (any later mutation clears it).
        stamp = cached.derive_content_hash("build", f"{key}")
        self._put(key, (cached, stamp))
        return cached

    def plan(self, flow: "DeploymentFlow", graph: "Graph", use_gpu: bool) -> "ExecutionPlan":
        """Memoized ``flow.lower(graph, use_gpu)``.

        Keyed by the flow's :meth:`~repro.flows.base.DeploymentFlow.pipeline_signature`
        and the graph's content hash: the signature is a stable content hash
        over the flow's pass pipeline and tuning knobs, so cache entries
        survive pass-internal refactors but can never be served to a flow
        variant whose knobs differ (e.g. a subclass that keeps the name).
        When the sibling plan (same pipeline/graph, other device class) is
        already cached and the flow places uniformly, the miss is served by
        re-targeting that plan instead of a full fusion + cost re-lowering.
        """
        if not self._enabled:
            return flow.lower(graph, use_gpu=use_gpu)
        graph_hash = graph.content_hash()
        pipeline_sig = flow.pipeline_signature()
        key = ("plan", pipeline_sig, graph_hash, use_gpu)
        cached = self._get(key)
        if cached is None:
            sibling = None
            if flow.supports_derivation():
                sibling = self._peek(("plan", pipeline_sig, graph_hash, not use_gpu))
            if sibling is not None:
                cached = flow.derive_plan(sibling, use_gpu)
            else:
                cached = flow.lower(graph, use_gpu=use_gpu)
            self._put(key, cached)
        return cached  # type: ignore[return-value]

    def memory(self, graph: "Graph") -> "MemoryProfile":
        """Memoized liveness analysis keyed by graph content hash."""
        from repro.runtime.memory import profile_memory

        if not self._enabled:
            return profile_memory(graph)
        key = ("memory", graph.content_hash())
        cached = self._get(key)
        if cached is None:
            cached = profile_memory(graph)
            self._put(key, cached)
        return cached  # type: ignore[return-value]

    def transform(self, name: str, graph: "Graph") -> Any:
        """Memoized registered graph transform (returns the transform's result)."""
        fn = get_transform(name)
        if not self._enabled:
            return fn(graph)
        parent_hash = graph.content_hash()
        key = ("transform", name, parent_hash)
        cached = self._get(key)
        if cached is None:
            cached = fn(graph)
            result_graph = getattr(cached, "graph", None)
            if result_graph is not None:
                # registered transforms are deterministic, so the rewritten
                # graph's identity derives from the parent's — skip re-hashing
                # the (often much larger) transformed structure.
                result_graph.derive_content_hash(name, parent_hash)
            self._put(key, cached)
        return cached


#: the process-global cache used by the profiler and sweep runner.
PLAN_CACHE = PlanCache()


def cached_build_model(model: str, batch_size: int = 1, **overrides) -> "Graph":
    return PLAN_CACHE.graph(model, batch_size=batch_size, **overrides)


def cached_lower(flow: "DeploymentFlow", graph: "Graph", use_gpu: bool) -> "ExecutionPlan":
    return PLAN_CACHE.plan(flow, graph, use_gpu)


def cached_profile_memory(graph: "Graph") -> "MemoryProfile":
    return PLAN_CACHE.memory(graph)


def cached_transform(name: str, graph: "Graph") -> Any:
    return PLAN_CACHE.transform(name, graph)


_register_builtin_transforms()
