"""Memoization layer for the sweep engine: graphs, plans, memory, transforms.

The figure/table harnesses sweep large cross-products in which most of the
per-point work is identical: the same model graph is rebuilt for every
platform, the same plan re-lowered for every device combination, and the same
liveness walk repeated per profile.  :class:`PlanCache` memoizes the four
expensive, structurally-pure stages behind a **two-tier cache**:

* an in-memory, size-bounded LRU (always on) over

  - ``build_model``       keyed by ``(model, batch_size, overrides)``
  - ``DeploymentFlow.lower`` keyed by
    ``(flow.pipeline_signature(), graph.content_hash(), device_mode)``
  - ``profile_memory``    keyed by ``graph.content_hash()``
  - graph transforms (e.g. LLM.int8()) keyed by ``(name, graph.content_hash())``
  - serving batch costs  keyed by the plan key plus the platform's id and
    content signature (see :meth:`PlanCache.serving_cost`)

* an optional persistent :class:`~repro.sweep.store.ArtifactStore` consulted
  on LRU misses for plans, memory profiles, and transform outputs, so fresh
  processes (pytest runs, CLI calls, CI jobs) start warm instead of cold.

Correctness rests on :meth:`repro.ir.graph.Graph.content_hash`: any mutation
of a graph changes its hash, so stale plan/memory entries can never be
returned for a modified graph (they simply age out of the LRU).  Disk
entries additionally fold the store schema version and a fingerprint of the
``repro`` source tree into every key, so entries written by different code
are unreachable rather than wrong.

Because registry builds are deterministic, a build key *is* a content
identity; :class:`GraphRef` exploits that to name a graph's hash without
building it, which lets a warm store serve a whole profiling sweep without
constructing a single node.

A process-global :data:`PLAN_CACHE` serves the profiler and the sweep runner;
worker processes of a parallel sweep each get their own in-memory instance
but share the persistent store directory (writes are atomic).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.hardware.device import DeviceKind, as_device_kind
from repro.ir.graph import Graph, derived_hash
from repro.models import build_model
from repro.sweep.store import (
    ArtifactStore,
    StoredTransformResult,
    external_fingerprint,
    plan_from_payload,
    plan_payload,
    transform_payload,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.flows.base import DeploymentFlow
    from repro.flows.plan import ExecutionPlan
    from repro.runtime.memory import MemoryProfile

#: registered graph transforms usable from sweep specs (name -> callable
#: returning an object with ``.graph`` and ``.stats``, like QuantizedModel).
_TRANSFORMS: dict[str, Any] = {}


def register_transform(name: str, fn: Any, replace: bool = False) -> None:
    """Register a graph transform for use in sweep specs (e.g. "llm-int8")."""
    if name in _TRANSFORMS and not replace:
        raise ValueError(f"transform {name!r} already registered")
    _TRANSFORMS[name] = fn


def get_transform(name: str) -> Any:
    try:
        return _TRANSFORMS[name]
    except KeyError:
        raise KeyError(
            f"unknown transform {name!r}; known: {sorted(_TRANSFORMS)}"
        ) from None


def _register_builtin_transforms() -> None:
    from repro.quant import quantize_llm_int8

    register_transform("llm-int8", quantize_llm_int8, replace=True)


class GraphRef:
    """A lazy handle to a registry-built graph.

    Registry builders are deterministic, so the build key identifies the
    structure exactly: the content hash is the same derivation
    :meth:`PlanCache.graph` stamps on built graphs, computable without
    constructing a single node.  Consumers that only need the hash (plan and
    memory lookups against a warm store) never trigger the build;
    :meth:`materialize` builds — and memoizes via the cache — on first
    structural access.  :class:`~repro.ir.graph.Graph` exposes the same
    ``content_hash``/``materialize``/``name`` surface, so cache consumers
    handle both uniformly.
    """

    __slots__ = ("name", "_content_hash", "_builder", "_graph")

    def __init__(self, name: str, content_hash: str, builder: Callable[[], Graph]):
        self.name = name
        self._content_hash = content_hash
        self._builder = builder
        self._graph: Graph | None = None

    def content_hash(self) -> str:
        return self._content_hash

    def materialize(self) -> Graph:
        if self._graph is None:
            self._graph = self._builder()
        return self._graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "built" if self._graph is not None else "lazy"
        return f"<GraphRef {self.name} {self._content_hash[:8]} {state}>"


@dataclass
class CacheStats:
    """Hit/miss counters per memoized stage.

    ``hits`` are served from the in-memory LRU, ``disk_hits`` from the
    persistent store, ``misses`` were computed from scratch.
    """

    hits: dict[str, int] = field(default_factory=dict)
    misses: dict[str, int] = field(default_factory=dict)
    disk_hits: dict[str, int] = field(default_factory=dict)
    evictions: int = 0

    def hit(self, kind: str) -> None:
        self.hits[kind] = self.hits.get(kind, 0) + 1

    def miss(self, kind: str) -> None:
        self.misses[kind] = self.misses.get(kind, 0) + 1

    def disk_hit(self, kind: str) -> None:
        self.disk_hits[kind] = self.disk_hits.get(kind, 0) + 1

    def snapshot(self) -> dict[str, object]:
        return {
            "hits": dict(self.hits),
            "misses": dict(self.misses),
            "disk_hits": dict(self.disk_hits),
            "evictions": self.evictions,
        }

    def delta_since(self, before: dict[str, object]) -> dict[str, object]:
        """Activity between an earlier :meth:`snapshot` and now."""
        current = self.snapshot()

        def diff(kind: str) -> dict[str, int]:
            prior: dict[str, int] = before.get(kind, {})  # type: ignore[assignment]
            now: dict[str, int] = current[kind]  # type: ignore[assignment]
            out = {k: v - prior.get(k, 0) for k, v in now.items()}
            return {k: v for k, v in out.items() if v}

        return {
            "hits": diff("hits"),
            "misses": diff("misses"),
            "disk_hits": diff("disk_hits"),
            "evictions": current["evictions"] - int(before.get("evictions", 0)),  # type: ignore[arg-type]
        }


class PlanCache:
    """Two-tier cache over the build -> lower -> profile pipeline.

    Tier 1 is a size-bounded in-memory LRU; tier 2 (``store``, optional) is
    a content-addressed on-disk :class:`~repro.sweep.store.ArtifactStore`
    consulted on LRU misses for plans, memory profiles, and transform
    outputs.  Every disk hit is promoted into the LRU.
    """

    def __init__(self, max_entries: int = 256, store: ArtifactStore | None = None):
        self.max_entries = max_entries
        self.stats = CacheStats()
        self.store = store
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.Lock()
        self._enabled = True

    # -- generic LRU plumbing ----------------------------------------------

    def _get(self, key: tuple) -> object | None:
        """LRU lookup; counts a hit when present (misses are counted by the
        compute sites, so a disk hit is never recorded as a miss)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hit(key[0])
                return self._entries[key]
            return None

    def _peek(self, key: tuple) -> object | None:
        """Lookup without touching LRU order or hit/miss counters."""
        with self._lock:
            return self._entries.get(key)

    def _put(self, key: tuple, value: object) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def _store_get(self, key: tuple) -> object | None:
        """Disk-tier lookup; counts and promotes on hit."""
        if self.store is None:
            return None
        value = self.store.get(key)
        if value is not None:
            self.stats.disk_hit(key[0])
        return value

    def _store_put(self, key: tuple, value: object) -> None:
        if self.store is not None:
            self.store.put(key, value)

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Reset the in-memory tier and counters (the disk store is untouched;
        use ``self.store.clear()`` for that)."""
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    @contextmanager
    def disabled(self) -> Iterator[None]:
        """Temporarily bypass both tiers (benchmarks measure cold paths this way)."""
        previous = self._enabled
        self._enabled = False
        try:
            yield
        finally:
            self._enabled = previous

    # -- memoized stages ----------------------------------------------------

    @staticmethod
    def _build_key(model: str, batch_size: int, overrides: dict) -> tuple:
        return ("graph", model, batch_size, tuple(sorted(overrides.items())))

    @staticmethod
    def _build_identity(model: str, key: tuple) -> str:
        """The derivation string a build stamp hashes.

        Folds the fingerprint of an *out-of-tree* builder's source file, so a
        user-registered model whose builder code changes gets a new content
        hash (and thus fresh plan/memory entries in the persistent store)
        even though the build key is unchanged.  In-tree builders contribute
        nothing — the store's source-tree fingerprint already covers them.
        """
        from repro.models import get_model

        external = external_fingerprint(get_model(model).builder)
        return f"{key}|{external}" if external else f"{key}"

    @staticmethod
    def _flow_identity(flow: "DeploymentFlow") -> str:
        """Out-of-tree code fingerprint of a flow and its passes (see above);
        "" for fully in-tree flows.  Memoized on the flow instance."""
        cached = flow.__dict__.get("_external_fingerprint")
        if cached is None:
            cached = external_fingerprint(flow, *flow.pipeline.passes)
            flow.__dict__["_external_fingerprint"] = cached
        return cached

    def graph(self, model: str, batch_size: int = 1, **overrides) -> Graph:
        """Memoized ``build_model``; overrides must be hashable (e.g. seq_len)."""
        if not self._enabled:
            return build_model(model, batch_size=batch_size, **overrides)
        key = self._build_key(model, batch_size, overrides)
        entry = self._get(key)
        if entry is not None:
            cached, stamp = entry
            # cached graphs are shared objects; if a caller mutated one, its
            # memoized hash was cleared and no longer matches the stamp —
            # rebuild fresh instead of handing out the modified structure.
            if cached.content_hash() == stamp:
                return cached
        self.stats.miss("graph")
        cached = build_model(model, batch_size=batch_size, **overrides)
        # registry builders are deterministic, so the build key identifies
        # the structure exactly; stamping it as the content hash spares a
        # full structural walk per graph (any later mutation clears it).
        stamp = cached.derive_content_hash("build", self._build_identity(model, key))
        self._put(key, (cached, stamp))
        return cached

    def graph_ref(self, model: str, batch_size: int = 1, **overrides) -> Graph | GraphRef:
        """A graph handle that defers building until structure is touched.

        Returns the built graph directly when the LRU already holds it;
        otherwise a :class:`GraphRef` carrying the build key's derived
        content hash.  Sweep points resolve graphs through this, so a warm
        persistent store can serve their plans and memory profiles while the
        graph itself is never constructed.
        """
        if not self._enabled:
            return build_model(model, batch_size=batch_size, **overrides)
        key = self._build_key(model, batch_size, overrides)
        entry = self._get(key)
        if entry is not None:
            cached, stamp = entry
            if cached.content_hash() == stamp:
                return cached
        return GraphRef(
            model,
            derived_hash("build", self._build_identity(model, key)),
            lambda: self.graph(model, batch_size=batch_size, **overrides),
        )

    def plan(
        self, flow: "DeploymentFlow", graph: Graph | GraphRef, use_gpu: "bool | str | DeviceKind"
    ) -> "ExecutionPlan":
        """Memoized ``flow.lower(graph, use_gpu)``.

        Keyed by the flow's :meth:`~repro.flows.base.DeploymentFlow.pipeline_signature`,
        the graph's content hash, and the lowering target's device-mode
        encoding (``use_gpu`` accepts the historical booleans, device-mode
        strings, and :class:`~repro.hardware.device.DeviceKind` values): the
        signature is a stable content hash over the flow's pass pipeline and
        tuning knobs, so cache entries survive pass-internal refactors but
        can never be served to a flow variant whose knobs differ (e.g. a
        subclass that keeps the name).  Misses fall through to the persistent
        store (the plan is rebuilt around the caller's graph handle without
        lowering); a full miss is served by re-targeting a sibling target's
        plan when the flow places uniformly, else by a fresh lowering — and
        the result is persisted for future processes.
        """
        target = as_device_kind(use_gpu)
        if not self._enabled:
            return flow.lower(graph.materialize(), use_gpu=target)
        graph_hash = graph.content_hash()
        # the pipeline signature covers declared knobs; the flow identity
        # additionally pins the *source* of any out-of-tree flow or pass, so
        # editing custom lowering code can never reuse a stale store entry.
        pipeline_sig = flow.pipeline_signature() + self._flow_identity(flow)
        key = ("plan", pipeline_sig, graph_hash, target.value)
        cached = self._get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        payload = self._store_get(key)
        if payload is not None:
            plan = plan_from_payload(payload, graph)
            self._put(key, plan)
            return plan
        self.stats.miss("plan")
        sibling = None
        if flow.supports_derivation():
            # any other target's plan derives this one for uniform flows
            for other in DeviceKind:
                if other is target:
                    continue
                sibling = self._peek(("plan", pipeline_sig, graph_hash, other.value))
                if sibling is not None:
                    break
        if sibling is not None:
            plan = flow.derive_plan(sibling, target)
        else:
            plan = flow.lower(graph.materialize(), use_gpu=target)
        if self.store is not None:  # don't pay the columnar encoding for a no-op
            self.store.put(key, plan_payload(plan))
        self._put(key, plan)
        return plan

    def serving_cost(
        self,
        flow: "DeploymentFlow",
        graph: "Graph | GraphRef",
        use_gpu: "bool | str | DeviceKind",
        platform,
        compute: Callable,
    ) -> Any:
        """Memoized per-batch serving cost (see :mod:`repro.serving.cost`).

        ``compute`` maps the lowered plan to a plain, picklable cost object
        (a :class:`~repro.serving.cost.BatchCost`).  Keys extend the plan
        key with the platform's id *and* content signature — the cost folds
        simulated latencies, so a platform re-registered with different
        numbers must miss.  A warm persistent store therefore serves whole
        serving sweeps without building a graph, lowering a plan, or running
        the simulator.
        """
        target = as_device_kind(use_gpu)
        if not self._enabled:
            return compute(self.plan(flow, graph, target))
        pipeline_sig = flow.pipeline_signature() + self._flow_identity(flow)
        key = (
            "serving",
            pipeline_sig,
            graph.content_hash(),
            target.value,
            platform.platform_id,
            platform.content_signature(),
        )
        cached = self._get(key)
        if cached is not None:
            return cached
        cached = self._store_get(key)
        if cached is None:
            self.stats.miss("serving")
            cached = compute(self.plan(flow, graph, target))
            self._store_put(key, cached)
        self._put(key, cached)
        return cached

    def memory(self, graph: Graph | GraphRef) -> "MemoryProfile":
        """Memoized liveness analysis keyed by graph content hash."""
        from repro.runtime.memory import profile_memory

        if not self._enabled:
            return profile_memory(graph.materialize())
        key = ("memory", graph.content_hash())
        cached = self._get(key)
        if cached is None:
            cached = self._store_get(key)
            if cached is None:
                self.stats.miss("memory")
                cached = profile_memory(graph.materialize())
                self._store_put(key, cached)
            self._put(key, cached)
        return cached  # type: ignore[return-value]

    def transform(self, name: str, graph: Graph | GraphRef) -> Any:
        """Memoized registered graph transform (returns the transform's result).

        The persistent tier stores only the transform's *stats*: the
        rewritten graph's content hash is a deterministic derivation of the
        parent's, which is everything the plan and memory caches key on, so
        a disk hit yields a :class:`~repro.sweep.store.StoredTransformResult`
        whose graph is a lazy ref that re-runs the transform only if
        something actually walks the rewritten structure.
        """
        fn = get_transform(name)
        if not self._enabled:
            return fn(graph.materialize())
        parent_hash = graph.content_hash()
        key = ("transform", name, parent_hash, external_fingerprint(fn))
        cached = self._get(key)
        if cached is not None:
            return cached
        transformed_hash = derived_hash(name, parent_hash)

        def rebuild() -> Graph:
            result = fn(graph.materialize())
            rebuilt = result.graph
            rebuilt.derive_content_hash(name, parent_hash)
            return rebuilt

        payload = self._store_get(key)
        if payload is not None:
            if payload["full"] is not None:
                cached = payload["full"]
            else:
                cached = StoredTransformResult(
                    graph=GraphRef(f"{name}", transformed_hash, rebuild),
                    stats=payload["stats"],
                )
            self._put(key, cached)
            return cached
        self.stats.miss("transform")
        cached = fn(graph.materialize())
        result_graph = getattr(cached, "graph", None)
        if result_graph is not None:
            # registered transforms are deterministic, so the rewritten
            # graph's identity derives from the parent's — skip re-hashing
            # the (often much larger) transformed structure.
            result_graph.derive_content_hash(name, parent_hash)
        self._store_put(key, transform_payload(cached))
        self._put(key, cached)
        return cached

    def warm_from_store(
        self,
        flow: "DeploymentFlow",
        graph: "Graph | GraphRef",
        use_gpu: "bool | str | DeviceKind",
        platform=None,
    ) -> int:
        """Promote one point's plan/memory/serving entries from the disk tier.

        Best-effort pre-warm for pool workers: looks up the keys the profile
        (and, when ``platform`` is given, the serving-cost) passes will need
        and promotes any store entry into the LRU.  Nothing is computed on a
        miss, and no hit/miss/disk-hit counters move — the store is read
        directly rather than through :meth:`_store_get` — so per-point cache
        deltas measured afterwards attribute activity to points, not to the
        warm-up.  Returns the number of entries promoted.
        """
        if not self._enabled or self.store is None:
            return 0
        target = as_device_kind(use_gpu)
        graph_hash = graph.content_hash()
        pipeline_sig = flow.pipeline_signature() + self._flow_identity(flow)
        promoted = 0
        plan_key = ("plan", pipeline_sig, graph_hash, target.value)
        if self._peek(plan_key) is None:
            payload = self.store.get(plan_key)
            if payload is not None:
                self._put(plan_key, plan_from_payload(payload, graph))
                promoted += 1
        memory_key = ("memory", graph_hash)
        if self._peek(memory_key) is None:
            cached = self.store.get(memory_key)
            if cached is not None:
                self._put(memory_key, cached)
                promoted += 1
        if platform is not None:
            serving_key = (
                "serving",
                pipeline_sig,
                graph_hash,
                target.value,
                platform.platform_id,
                platform.content_signature(),
            )
            if self._peek(serving_key) is None:
                cached = self.store.get(serving_key)
                if cached is not None:
                    self._put(serving_key, cached)
                    promoted += 1
        return promoted


#: the process-global cache used by the profiler and sweep runner; its disk
#: tier follows REPRO_CACHE_DIR (set to 0/off/empty to disable).
PLAN_CACHE = PlanCache(store=ArtifactStore.from_env())


def cached_build_model(model: str, batch_size: int = 1, **overrides) -> Graph:
    return PLAN_CACHE.graph(model, batch_size=batch_size, **overrides)


def cached_lower(
    flow: "DeploymentFlow", graph: Graph | GraphRef, use_gpu: "bool | str | DeviceKind"
) -> "ExecutionPlan":
    return PLAN_CACHE.plan(flow, graph, use_gpu)


def cached_profile_memory(graph: Graph | GraphRef) -> "MemoryProfile":
    return PLAN_CACHE.memory(graph)


def cached_transform(name: str, graph: Graph | GraphRef) -> Any:
    return PLAN_CACHE.transform(name, graph)


_register_builtin_transforms()
