"""Declarative sweep grids: what to profile, as data instead of nested loops.

A :class:`SweepSpec` names the value sets of each sweep dimension and the
nesting order in which the cross-product should be walked; :meth:`points`
expands it into concrete :class:`SweepPoint` records.  Keeping the grid
declarative lets every figure/table harness share one runner (caching,
vectorized simulation, optional process parallelism) while still controlling
its exact row order — the CSV artifacts are byte-stable across engines.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace

from repro.errors import RegistryError
from repro.hardware.device import DeviceKind, as_device_kind

#: canonical dimension nesting order; specs may reorder any prefix subset.
DIMENSIONS = ("platform", "model", "seq_len", "batch_size", "flow", "device", "transform")

#: legacy device axis values (the axis now accepts any registered
#: :class:`~repro.hardware.device.DeviceKind` value, e.g. ``"npu"``).
DEVICE_GPU = "gpu"
DEVICE_CPU = "cpu"

#: every named placement target the ``device`` axis accepts.
DEVICE_MODES = tuple(kind.value for kind in DeviceKind)


@dataclass(frozen=True)
class SweepPoint:
    """One fully-resolved configuration to profile."""

    platform: str
    model: str
    flow: str
    batch_size: int
    use_gpu: bool
    seq_len: int | None = None
    transform: str | None = None
    iterations: int = 3
    seed: int = 0
    #: named placement target from the sweep's ``device`` axis; None means
    #: the legacy ``use_gpu`` boolean decides (gpu/cpu).
    device_mode: str | None = None

    @property
    def device(self) -> str:
        if self.device_mode is not None:
            return self.device_mode
        return DEVICE_GPU if self.use_gpu else DEVICE_CPU

    @property
    def target(self) -> DeviceKind:
        """The placement target as a :class:`DeviceKind`."""
        return as_device_kind(self.device)

    def describe(self) -> str:
        parts = [self.model, f"b{self.batch_size}", self.flow, self.platform, self.device]
        if self.seq_len is not None:
            parts.insert(1, f"seq{self.seq_len}")
        if self.transform:
            parts.append(self.transform)
        return " ".join(parts)


@dataclass(frozen=True)
class SweepSpec:
    """A cross-product sweep grid plus the nesting order of its dimensions."""

    models: tuple[str, ...]
    platforms: tuple[str, ...] = ("A",)
    flows: tuple[str, ...] = ("pytorch",)
    batch_sizes: tuple[int, ...] = (1,)
    devices: tuple[str, ...] = (DEVICE_GPU,)
    seq_lens: tuple[int | None, ...] = (None,)
    transforms: tuple[str | None, ...] = (None,)
    iterations: int = 3
    seed: int = 0
    #: outermost-to-innermost loop order; unlisted dimensions follow in
    #: canonical order after the listed ones.
    order: tuple[str, ...] = field(default=DIMENSIONS)
    name: str = "sweep"

    def _values(self, dimension: str) -> tuple:
        return {
            "platform": self.platforms,
            "model": self.models,
            "flow": self.flows,
            "batch_size": self.batch_sizes,
            "device": self.devices,
            "seq_len": self.seq_lens,
            "transform": self.transforms,
        }[dimension]

    def resolved_order(self) -> tuple[str, ...]:
        """The full loop order: explicit dimensions then canonical remainder."""
        for dimension in self.order:
            if dimension not in DIMENSIONS:
                raise RegistryError(
                    f"unknown sweep dimension {dimension!r}; known: {DIMENSIONS}"
                )
        if len(set(self.order)) != len(self.order):
            raise RegistryError(f"duplicate dimensions in sweep order {self.order}")
        return self.order + tuple(d for d in DIMENSIONS if d not in self.order)

    @property
    def num_points(self) -> int:
        total = 1
        for dimension in DIMENSIONS:
            total *= len(self._values(dimension))
        return total

    def points(self) -> list[SweepPoint]:
        """Expand the grid into concrete points, walked in nesting order."""
        order = self.resolved_order()
        for dimension in order:
            if not self._values(dimension):
                return []
        for device in self.devices:
            if device not in DEVICE_MODES:
                raise RegistryError(
                    f"unknown device {device!r}; known modes: {DEVICE_MODES}"
                )
        points = []
        for combo in itertools.product(*(self._values(d) for d in order)):
            values = dict(zip(order, combo))
            points.append(
                SweepPoint(
                    platform=values["platform"],
                    model=values["model"],
                    flow=values["flow"],
                    batch_size=values["batch_size"],
                    use_gpu=values["device"] != DEVICE_CPU,
                    seq_len=values["seq_len"],
                    transform=values["transform"],
                    iterations=self.iterations,
                    seed=self.seed,
                    device_mode=values["device"],
                )
            )
        return points

    def subset(self, **overrides) -> "SweepSpec":
        """A copy of this spec with some dimensions replaced."""
        return replace(self, **overrides)
