"""Declarative sweep grids: what to profile, as data instead of nested loops.

A :class:`SweepSpec` names the value sets of each sweep dimension and the
nesting order in which the cross-product should be walked; :meth:`points`
expands it into concrete :class:`SweepPoint` records.  Keeping the grid
declarative lets every figure/table harness share one runner (caching,
vectorized simulation, optional process parallelism) while still controlling
its exact row order — the CSV artifacts are byte-stable across engines.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace

from repro.errors import RegistryError
from repro.hardware.device import DeviceKind, as_device_kind

#: canonical dimension nesting order; specs may reorder any prefix subset.
#: ("load" was appended for the serving simulator, "policy"/"fault" for the
#: cluster layer, and "autoscaler" for elastic fleets; their default
#: singleton values keep every pre-existing spec's point grid unchanged.)
DIMENSIONS = (
    "platform", "model", "seq_len", "batch_size", "flow", "device", "transform",
    "load", "policy", "fault", "autoscaler",
)

#: legacy device axis values (the axis now accepts any registered
#: :class:`~repro.hardware.device.DeviceKind` value, e.g. ``"npu"``).
DEVICE_GPU = "gpu"
DEVICE_CPU = "cpu"

#: every named placement target the ``device`` axis accepts.
DEVICE_MODES = tuple(kind.value for kind in DeviceKind)


@dataclass(frozen=True)
class SweepPoint:
    """One fully-resolved configuration to profile."""

    platform: str
    model: str
    flow: str
    batch_size: int
    use_gpu: bool
    seq_len: int | None = None
    transform: str | None = None
    iterations: int = 3
    seed: int = 0
    #: named placement target from the sweep's ``device`` axis; None means
    #: the legacy ``use_gpu`` boolean decides (gpu/cpu).
    device_mode: str | None = None
    #: offered load as a fraction of single-stream (batch-1) capacity; None
    #: means a plain per-inference profile point (no serving simulation).
    load: float | None = None
    #: serving knobs, copied from the spec (only read when ``load`` is set).
    scheduler: str = "dynamic"
    trace: str = "poisson"
    num_requests: int = 32
    max_batch: int = 8
    max_wait_s: float = 2e-3
    decode_steps: tuple[int, int] = (1, 1)
    #: cluster axes: a non-None ``policy`` routes the load point through a
    #: multi-replica ClusterRouter instead of a single engine.
    policy: str | None = None
    fault_profile: str | None = None
    #: cluster knobs, copied from the spec (only read when ``policy`` is set).
    num_replicas: int = 2
    fault_seed: int = 0
    timeout_s: float | None = None
    timeout_cap_s: float | None = None
    hedge_after_s: float | None = None
    shed_queue_s: float | None = None
    deadline_s: float | None = None
    #: serving backend ("fast" columnar kernels or the scalar "reference"
    #: loop — bit-identical results either way).
    backend: str = "fast"
    #: cap on materialized per-request records; None keeps everything.
    record_requests: int | None = None
    #: elastic-fleet axis: a non-None controller name autoscales the
    #: cluster between ``autoscale_min_replicas`` and ``num_replicas``
    #: (the provisioned ceiling).  None keeps the whole fleet online.
    autoscaler: str | None = None
    #: autoscale knobs, copied from the spec (read when ``autoscaler`` set).
    autoscale_min_replicas: int = 1
    autoscale_interval_s: float = 0.1
    autoscale_cooldown_s: float = 0.0
    autoscale_provision_s: float = 0.1
    autoscale_target: float = 0.6
    autoscale_slo_s: float | None = None

    @property
    def device(self) -> str:
        if self.device_mode is not None:
            return self.device_mode
        return DEVICE_GPU if self.use_gpu else DEVICE_CPU

    @property
    def target(self) -> DeviceKind:
        """The placement target as a :class:`DeviceKind`."""
        return as_device_kind(self.device)

    def describe(self) -> str:
        parts = [self.model, f"b{self.batch_size}", self.flow, self.platform, self.device]
        if self.seq_len is not None:
            parts.insert(1, f"seq{self.seq_len}")
        if self.transform:
            parts.append(self.transform)
        if self.load is not None:
            parts.append(f"load{self.load:g} {self.scheduler}")
        if self.policy is not None:
            parts.append(f"{self.num_replicas}x {self.policy}")
            if self.fault_profile:
                parts.append(f"faults={self.fault_profile}")
            if self.autoscaler:
                parts.append(
                    f"autoscale={self.autoscaler}"
                    f" [{self.autoscale_min_replicas},{self.num_replicas}]"
                )
        return " ".join(parts)


@dataclass(frozen=True)
class SweepSpec:
    """A cross-product sweep grid plus the nesting order of its dimensions."""

    models: tuple[str, ...]
    platforms: tuple[str, ...] = ("A",)
    flows: tuple[str, ...] = ("pytorch",)
    batch_sizes: tuple[int, ...] = (1,)
    devices: tuple[str, ...] = (DEVICE_GPU,)
    seq_lens: tuple[int | None, ...] = (None,)
    transforms: tuple[str | None, ...] = (None,)
    #: serving ``load`` axis: offered load as a fraction of single-stream
    #: capacity.  The default singleton None keeps the grid per-inference
    #: only; any non-None value makes the runner serve that point through
    #: the discrete-event engine (see ``repro.serving``).
    loads: tuple[float | None, ...] = (None,)
    #: cluster ``policy`` axis: admission policies for a multi-replica fleet.
    #: The default singleton None keeps load points on the single engine; a
    #: non-None policy requires a non-None load (the cluster always serves).
    policies: tuple[str | None, ...] = (None,)
    #: cluster ``fault`` axis: fault profile names (see
    #: ``repro.serving.faults``).  Only meaningful alongside a policy.
    fault_profiles: tuple[str | None, ...] = (None,)
    #: elastic-fleet ``autoscaler`` axis: controller names (see
    #: ``repro.serving.autoscale``).  Only meaningful alongside a policy;
    #: ``num_replicas`` is the provisioned ceiling the controller scales
    #: within.
    autoscalers: tuple[str | None, ...] = (None,)
    #: serving knobs shared by every load point of the grid.
    scheduler: str = "dynamic"
    trace: str = "poisson"
    num_requests: int = 32
    max_batch: int = 8
    max_wait_s: float = 2e-3
    decode_steps: tuple[int, int] = (1, 1)
    #: cluster knobs shared by every policy point of the grid.
    num_replicas: int = 2
    fault_seed: int = 0
    timeout_s: float | None = None
    timeout_cap_s: float | None = None
    hedge_after_s: float | None = None
    shed_queue_s: float | None = None
    deadline_s: float | None = None
    #: serving backend for every load point of the grid ("fast"/"reference").
    backend: str = "fast"
    #: record cap for every load point of the grid (None: keep everything).
    record_requests: int | None = None
    #: autoscale knobs shared by every autoscaler point of the grid.
    autoscale_min_replicas: int = 1
    autoscale_interval_s: float = 0.1
    autoscale_cooldown_s: float = 0.0
    autoscale_provision_s: float = 0.1
    autoscale_target: float = 0.6
    autoscale_slo_s: float | None = None
    iterations: int = 3
    seed: int = 0
    #: outermost-to-innermost loop order; unlisted dimensions follow in
    #: canonical order after the listed ones.
    order: tuple[str, ...] = field(default=DIMENSIONS)
    name: str = "sweep"

    def _values(self, dimension: str) -> tuple:
        return {
            "platform": self.platforms,
            "model": self.models,
            "flow": self.flows,
            "batch_size": self.batch_sizes,
            "device": self.devices,
            "seq_len": self.seq_lens,
            "transform": self.transforms,
            "load": self.loads,
            "policy": self.policies,
            "fault": self.fault_profiles,
            "autoscaler": self.autoscalers,
        }[dimension]

    def resolved_order(self) -> tuple[str, ...]:
        """The full loop order: explicit dimensions then canonical remainder."""
        for dimension in self.order:
            if dimension not in DIMENSIONS:
                raise RegistryError(
                    f"unknown sweep dimension {dimension!r}; known: {DIMENSIONS}"
                )
        if len(set(self.order)) != len(self.order):
            raise RegistryError(f"duplicate dimensions in sweep order {self.order}")
        return self.order + tuple(d for d in DIMENSIONS if d not in self.order)

    @property
    def num_points(self) -> int:
        total = 1
        for dimension in DIMENSIONS:
            total *= len(self._values(dimension))
        return total

    def points(self) -> list[SweepPoint]:
        """Expand the grid into concrete points, walked in nesting order."""
        order = self.resolved_order()
        for dimension in order:
            if not self._values(dimension):
                return []
        for device in self.devices:
            if device not in DEVICE_MODES:
                raise RegistryError(
                    f"unknown device {device!r}; known modes: {DEVICE_MODES}"
                )
        for load in self.loads:
            if load is not None and load <= 0.0:
                raise RegistryError(
                    f"sweep load values must be positive (or None), got {load!r}"
                )
        if self.num_replicas < 1:
            raise RegistryError(
                f"num_replicas must be >= 1, got {self.num_replicas}"
            )
        points = []
        for combo in itertools.product(*(self._values(d) for d in order)):
            values = dict(zip(order, combo))
            if values["load"] is not None and values["transform"]:
                raise RegistryError(
                    "serving load points do not support graph transforms yet;"
                    " drop the transform axis or the load axis"
                )
            if values["policy"] is not None and values["load"] is None:
                raise RegistryError(
                    "cluster policy points require a load value; set the"
                    " spec's loads axis"
                )
            if values["fault"] is not None and values["policy"] is None:
                raise RegistryError(
                    "fault profile points require an admission policy; set"
                    " the spec's policies axis"
                )
            if values["autoscaler"] is not None and values["policy"] is None:
                raise RegistryError(
                    "autoscaler points require an admission policy; set"
                    " the spec's policies axis"
                )
            points.append(
                SweepPoint(
                    platform=values["platform"],
                    model=values["model"],
                    flow=values["flow"],
                    batch_size=values["batch_size"],
                    use_gpu=values["device"] != DEVICE_CPU,
                    seq_len=values["seq_len"],
                    transform=values["transform"],
                    iterations=self.iterations,
                    seed=self.seed,
                    device_mode=values["device"],
                    load=values["load"],
                    scheduler=self.scheduler,
                    trace=self.trace,
                    num_requests=self.num_requests,
                    max_batch=self.max_batch,
                    max_wait_s=self.max_wait_s,
                    decode_steps=self.decode_steps,
                    policy=values["policy"],
                    fault_profile=values["fault"],
                    num_replicas=self.num_replicas,
                    fault_seed=self.fault_seed,
                    timeout_s=self.timeout_s,
                    timeout_cap_s=self.timeout_cap_s,
                    hedge_after_s=self.hedge_after_s,
                    shed_queue_s=self.shed_queue_s,
                    deadline_s=self.deadline_s,
                    backend=self.backend,
                    record_requests=self.record_requests,
                    autoscaler=values["autoscaler"],
                    autoscale_min_replicas=self.autoscale_min_replicas,
                    autoscale_interval_s=self.autoscale_interval_s,
                    autoscale_cooldown_s=self.autoscale_cooldown_s,
                    autoscale_provision_s=self.autoscale_provision_s,
                    autoscale_target=self.autoscale_target,
                    autoscale_slo_s=self.autoscale_slo_s,
                )
            )
        return points

    def subset(self, **overrides) -> "SweepSpec":
        """A copy of this spec with some dimensions replaced."""
        return replace(self, **overrides)
