"""Content-addressed persistent artifact store: the disk tier of PlanCache.

The in-memory :class:`~repro.sweep.cache.PlanCache` makes repeated work free
*within* a process; this store makes it cheap *across* processes.  Every
pytest invocation, ``nongemm-bench`` CLI call, and CI job re-derives the same
lowered plans, memory profiles, and transform outputs from scratch — pure
Python-object work that is bit-identical run to run.  The store persists
those artifacts once and serves them to every later process.

Design:

* **Content-addressed.**  Every entry is keyed by content hashes — a graph's
  :meth:`~repro.ir.graph.Graph.content_hash`, a flow's
  :meth:`~repro.flows.base.DeploymentFlow.pipeline_signature`, the device
  mode — folded with :data:`STORE_SCHEMA_VERSION` and a fingerprint of the
  ``repro`` source tree.  A stale entry can therefore never be *served*
  incorrectly: any change to the code or the keyed inputs changes the key,
  and the orphaned entry simply ages out under the size cap.
* **Corruption-tolerant.**  Loads treat any unreadable entry (truncated
  pickle, garbage bytes, vanished file, key mismatch) as a miss: the value
  is recomputed and rewritten.  A broken store can slow a run down, never
  poison it.
* **Atomic.**  Writes go to a temp file in the store directory and are
  published with :func:`os.replace`, so concurrent processes sharing one
  store directory see only complete entries.
* **Size-capped.**  When the store grows past ``max_bytes`` the
  least-recently-used entries (by mtime; hits refresh it) are deleted.

Opt-out: set ``REPRO_CACHE_DIR`` to ``0``/``off``/empty to disable, or to a
path to relocate the store (default ``$XDG_CACHE_HOME/nongemm-repro``).
Programmatically, construct a :class:`~repro.sweep.cache.PlanCache` with
``store=None`` or assign ``PLAN_CACHE.store = None``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.flows.plan import ExecutionPlan
    from repro.ir.graph import Graph

#: Bump when the on-disk entry layout or the payload schema of any artifact
#: kind changes; old entries then miss (and age out) instead of failing to
#: decode.  Semantic changes to lowering/cost code are covered automatically
#: by the source-tree fingerprint folded into every key.  When bumping, also
#: update the hardcoded ``nongemm-artifact-store-v<N>-`` cache keys in
#: ``.github/workflows/ci.yml`` so CI stops shipping the dead store around.
#: v2: N-device refactor — plan keys encode a device mode (not a use_gpu
#: boolean), plan payloads carry a ``target`` kind, and the pre-seeded
#: ``PlanArrays`` gained a device-index column.
#: v3: serving simulator — a new batch-indexed ``"serving"`` artifact kind
#: (pickled :class:`~repro.serving.cost.BatchCost` per plan key + platform
#: signature); the bump retires any same-named entries an older layout
#: could have left behind.
STORE_SCHEMA_VERSION = 3

#: default size cap; override with REPRO_CACHE_MAX_MB.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

_DISABLED_VALUES = {"", "0", "off", "none", "disabled"}

_CODE_FINGERPRINT: str | None = None


def code_fingerprint() -> str:
    """Content hash of every ``repro`` source file, computed once per process.

    Folding this into store keys makes the disk tier self-invalidating: any
    edit anywhere in ``src/repro`` (cost model, lowering pass, model builder)
    changes every key, so entries computed by different code are unreachable.
    This is deliberately coarse — a cache miss costs a recompute, a stale hit
    would cost correctness.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.blake2b(digest_size=16)
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x01")
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


_EXTERNAL_FILE_HASHES: dict[str, str] = {}
_EXTERNAL_FINGERPRINTS: dict[tuple, str] = {}


def external_fingerprint(*objects: object) -> str:
    """Content hash of the out-of-tree source files defining ``objects``.

    :func:`code_fingerprint` covers everything under ``src/repro``; flows,
    passes, transforms, and model builders registered by *user code*
    (examples, downstream projects) live outside it, and an edit to one must
    not reuse store entries computed by the old implementation.  This hashes
    the defining module file of every object whose module is not part of the
    ``repro`` package; in-tree objects contribute nothing, so the common
    case returns ``""`` and costs two memoized dict lookups.
    """
    import inspect

    types = tuple(obj if inspect.isroutine(obj) else type(obj) for obj in objects)
    cached = _EXTERNAL_FINGERPRINTS.get(types)
    if cached is not None:
        return cached
    package_root = str(Path(__file__).resolve().parent.parent)
    digest = hashlib.blake2b(digest_size=16)
    relevant = False
    for entry in types:
        try:
            source = inspect.getfile(entry)
        except (TypeError, OSError):
            # builtins / REPL-defined code: no file to pin, key on the name.
            digest.update(f"<nofile:{getattr(entry, '__qualname__', entry)!r}>".encode())
            relevant = True
            continue
        resolved = str(Path(source).resolve())
        if resolved.startswith(package_root + os.sep):
            continue
        try:
            stat = Path(resolved).stat()
            memo_key = f"{resolved}:{stat.st_mtime_ns}:{stat.st_size}"
        except OSError:
            memo_key = resolved
        file_hash = _EXTERNAL_FILE_HASHES.get(memo_key)
        if file_hash is None:
            try:
                file_hash = hashlib.blake2b(
                    Path(resolved).read_bytes(), digest_size=16
                ).hexdigest()
            except OSError:
                file_hash = "<unreadable>"
            _EXTERNAL_FILE_HASHES[memo_key] = file_hash
        digest.update(f"{resolved}={file_hash}".encode())
        relevant = True
    result = digest.hexdigest() if relevant else ""
    _EXTERNAL_FINGERPRINTS[types] = result
    return result


def default_cache_dir() -> Path | None:
    """Resolve ``REPRO_CACHE_DIR``; ``None`` means the store is disabled."""
    raw = os.environ.get("REPRO_CACHE_DIR")
    if raw is not None:
        if raw.strip().lower() in _DISABLED_VALUES:
            return None
        return Path(raw).expanduser()
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base).expanduser() if base else Path.home() / ".cache"
    return root / "nongemm-repro"


def _env_max_bytes() -> int:
    raw = os.environ.get("REPRO_CACHE_MAX_MB")
    if not raw:
        return DEFAULT_MAX_BYTES
    try:
        return max(1, int(raw)) * 1024 * 1024
    except ValueError:
        return DEFAULT_MAX_BYTES


@dataclass
class StoreInfo:
    """Snapshot of the store's on-disk state (``nongemm-bench cache info``)."""

    directory: str
    schema_version: int
    fingerprint: str
    entries: int
    total_bytes: int
    max_bytes: int
    entries_by_kind: dict[str, int] = field(default_factory=dict)


class ArtifactStore:
    """A flat directory of pickled, content-addressed artifacts.

    One file per entry, named ``<kind>-<digest>.pkl`` where the digest folds
    the schema version, the source-tree fingerprint, and the caller's key
    tuple.  The pickled payload is ``(key, value)`` so a (vanishingly
    unlikely) digest collision or a hand-copied file reads as a miss rather
    than a wrong value.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        max_bytes: int | None = None,
        schema_version: int = STORE_SCHEMA_VERSION,
        fingerprint: str | None = None,
    ):
        self.directory = Path(directory)
        self.max_bytes = _env_max_bytes() if max_bytes is None else max_bytes
        self.schema_version = schema_version
        self._fingerprint = fingerprint
        self._approx_bytes: int | None = None

    @classmethod
    def from_env(cls) -> "ArtifactStore | None":
        """The store described by the environment, or None when disabled."""
        directory = default_cache_dir()
        if directory is None:
            return None
        return cls(directory)

    @property
    def fingerprint(self) -> str:
        if self._fingerprint is None:
            self._fingerprint = code_fingerprint()
        return self._fingerprint

    # -- keying ------------------------------------------------------------

    def _digest(self, key: tuple) -> str:
        digest = hashlib.blake2b(digest_size=16)
        digest.update(f"{self.schema_version}|{self.fingerprint}|{key!r}".encode())
        return digest.hexdigest()

    def _path(self, key: tuple) -> Path:
        return self.directory / f"{key[0]}-{self._digest(key)}.pkl"

    # -- load / save -------------------------------------------------------

    def get(self, key: tuple) -> object | None:
        """The stored value for ``key``, or None on miss *or any failure*.

        Unreadable entries are removed so they stop costing a read per run.
        """
        path = self._path(key)
        try:
            blob = path.read_bytes()
            stored_key, value = pickle.loads(blob)
            if stored_key != key:
                return None
        except FileNotFoundError:
            return None
        except Exception:
            # truncated write, garbage bytes, unpicklable class: recompute.
            try:
                path.unlink()
            except OSError:
                pass
            return None
        try:
            os.utime(path)  # refresh mtime: eviction is least-recently-used
        except OSError:
            pass
        return value

    def put(self, key: tuple, value: object) -> None:
        """Persist ``value`` under ``key`` atomically; failures are silent.

        The store is an accelerator: a full disk or read-only directory must
        never break the computation whose result it failed to keep.
        """
        try:
            blob = pickle.dumps((key, value), protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return
        if len(blob) > self.max_bytes:
            return
        path = self._path(key)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            try:
                replaced = path.stat().st_size  # overwrite: reclaim old size
            except OSError:
                replaced = 0
            fd, tmp_name = tempfile.mkstemp(dir=self.directory, prefix=".tmp-")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return
        if self._approx_bytes is None:
            self._approx_bytes = self._scan_bytes()
        else:
            self._approx_bytes += len(blob) - replaced
        if self._approx_bytes > self.max_bytes:
            self._evict_to_cap()

    # -- maintenance -------------------------------------------------------

    def _entries(self) -> list[Path]:
        try:
            return [p for p in self.directory.iterdir() if p.suffix == ".pkl"]
        except OSError:
            return []

    def _scan_bytes(self) -> int:
        total = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def _purge_stale_tmp(self, max_age_s: float = 3600.0) -> None:
        """Drop temp files orphaned by killed writers (they never publish)."""
        import time

        cutoff = time.time() - max_age_s
        try:
            candidates = list(self.directory.glob(".tmp-*"))
        except OSError:
            return
        for path in candidates:
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink()
            except OSError:
                pass

    def _evict_to_cap(self) -> None:
        """Delete least-recently-used entries until 80% of the cap is free."""
        self._purge_stale_tmp()
        target = int(self.max_bytes * 0.8)
        stats = []
        for path in self._entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            stats.append((stat.st_mtime, stat.st_size, path))
        stats.sort()
        total = sum(size for _, size, _ in stats)
        for _, size, path in stats:
            if total <= target:
                break
            try:
                path.unlink()
                total -= size
            except OSError:
                pass
        self._approx_bytes = total

    def clear(self) -> int:
        """Delete every entry (and any orphaned temp file); returns the count."""
        self._purge_stale_tmp(max_age_s=0.0)
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self._approx_bytes = 0
        return removed

    def info(self) -> StoreInfo:
        by_kind: dict[str, int] = {}
        total = 0
        count = 0
        for path in self._entries():
            kind = path.name.split("-", 1)[0]
            by_kind[kind] = by_kind.get(kind, 0) + 1
            count += 1
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return StoreInfo(
            directory=str(self.directory),
            schema_version=self.schema_version,
            fingerprint=self.fingerprint,
            entries=count,
            total_bytes=total,
            max_bytes=self.max_bytes,
            entries_by_kind=dict(sorted(by_kind.items())),
        )


# -- plan payloads ---------------------------------------------------------
#
# Plans are persisted *without* their source graph: the store key already
# pins the graph's content hash, so the loader re-attaches whatever graph
# (or lazy GraphRef) the caller resolved — typically without ever building
# it.  The payload also carries the plan's memoized derivatives (simulator
# arrays, fusion rate, coverage count) so a warm-from-disk process skips
# those walks too.
#
# Kernels are the bulk of a plan — tens of thousands of NamedTuples whose
# generic unpickling dominates a warm-from-disk run.  They are therefore
# encoded *columnar* (numpy arrays for the numeric fields, a deduplicated
# vocabulary for the op-kind tuples) and decoded lazily: the profiling hot
# path reads only the pre-seeded simulator arrays and scalar derivatives, so
# a loaded plan usually never rebuilds a single PlannedKernel.

#: columnar values above this are ruled out (int64 overflow); such plans
#: fall back to pickling the kernel list directly.
_INT64_SAFE = 2**62


def _encode_kernels(kernels: "list") -> dict | None:
    """Columnar encoding of a kernel list; None when it doesn't fit int64."""
    import numpy as np

    from repro.hardware.device import DeviceKind
    from repro.ir.dtype import DType
    from repro.ops.base import OpCategory

    categories = tuple(OpCategory)
    devices = tuple(DeviceKind)
    dtypes = tuple(DType)
    kind_vocab: dict[tuple, int] = {}
    names: list[str] = []
    kind_idx: list[int] = []
    flat_node_ids: list[int] = []
    offsets = [0]
    numeric: list[tuple] = []
    for k in kernels:
        if (
            k.cost.flops > _INT64_SAFE
            or k.cost.bytes_read > _INT64_SAFE
            or k.cost.bytes_written > _INT64_SAFE
            or k.transfer_bytes_in > _INT64_SAFE
            or k.transfer_bytes_out > _INT64_SAFE
        ):
            return None
        names.append(k.name)
        kind_idx.append(kind_vocab.setdefault(k.op_kinds, len(kind_vocab)))
        flat_node_ids.extend(k.node_ids)
        offsets.append(len(flat_node_ids))
        numeric.append(
            (
                categories.index(k.category),
                devices.index(k.device),
                dtypes.index(k.dtype),
                k.cost.flops,
                k.cost.bytes_read,
                k.cost.bytes_written,
                k.metadata_only,
                k.is_custom,
                k.launch_count,
                k.transfer_bytes_in,
                k.transfer_bytes_out,
            )
        )
    columns = tuple(zip(*numeric)) if numeric else ((),) * 11
    return {
        "names": names,
        "kind_vocab": list(kind_vocab),
        "kind_idx": np.array(kind_idx, dtype=np.int32),
        "node_ids": np.array(flat_node_ids, dtype=np.int64),
        "offsets": np.array(offsets, dtype=np.int64),
        "category": np.array(columns[0], dtype=np.int8),
        "device": np.array(columns[1], dtype=np.int8),
        "dtype": np.array(columns[2], dtype=np.int8),
        "flops": np.array(columns[3], dtype=np.int64),
        "bytes_read": np.array(columns[4], dtype=np.int64),
        "bytes_written": np.array(columns[5], dtype=np.int64),
        "metadata_only": np.array(columns[6], dtype=bool),
        "is_custom": np.array(columns[7], dtype=bool),
        "launch_count": np.array(columns[8], dtype=np.int32),
        "transfer_in": np.array(columns[9], dtype=np.int64),
        "transfer_out": np.array(columns[10], dtype=np.int64),
    }


class LazyKernelList:
    """A kernel list decoded from columnar payload columns on first access.

    Supports the cheap queries the profiling path needs (``len``, covered
    node count) without decoding; iteration, indexing, and comparison
    materialize the real :class:`~repro.flows.plan.PlannedKernel` list once.
    """

    __slots__ = ("_encoded", "_kernels")

    def __init__(self, encoded: dict):
        self._encoded = encoded
        self._kernels: list | None = None

    def covered_node_count(self) -> int:
        """Total graph nodes covered — ``sum(len(k.node_ids))`` undecoded."""
        if self._kernels is not None:
            return sum(len(k.node_ids) for k in self._kernels)
        return int(self._encoded["offsets"][-1])

    def materialize(self) -> list:
        if self._kernels is None:
            from repro.flows.plan import PlannedKernel
            from repro.hardware.device import DeviceKind
            from repro.ir.dtype import DType
            from repro.ops.base import OpCategory, OpCost

            e = self._encoded
            categories = tuple(OpCategory)
            devices = tuple(DeviceKind)
            dtypes = tuple(DType)
            kind_vocab = e["kind_vocab"]
            names = e["names"]
            kind_idx = e["kind_idx"].tolist()
            node_ids = e["node_ids"].tolist()
            offsets = e["offsets"].tolist()
            category = e["category"].tolist()
            device = e["device"].tolist()
            dtype = e["dtype"].tolist()
            flops = e["flops"].tolist()
            bytes_read = e["bytes_read"].tolist()
            bytes_written = e["bytes_written"].tolist()
            metadata_only = e["metadata_only"].tolist()
            is_custom = e["is_custom"].tolist()
            launch_count = e["launch_count"].tolist()
            transfer_in = e["transfer_in"].tolist()
            transfer_out = e["transfer_out"].tolist()
            self._kernels = [
                PlannedKernel(
                    names[i],
                    tuple(node_ids[offsets[i] : offsets[i + 1]]),
                    kind_vocab[kind_idx[i]],
                    categories[category[i]],
                    devices[device[i]],
                    OpCost(flops[i], bytes_read[i], bytes_written[i]),
                    dtypes[dtype[i]],
                    metadata_only[i],
                    is_custom[i],
                    launch_count[i],
                    transfer_in[i],
                    transfer_out[i],
                )
                for i in range(len(names))
            ]
        return self._kernels

    def __len__(self) -> int:
        return len(self._encoded["names"])

    def __iter__(self):
        return iter(self.materialize())

    def __getitem__(self, index):
        return self.materialize()[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LazyKernelList):
            other = other.materialize()
        return self.materialize() == other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "decoded" if self._kernels is not None else "encoded"
        return f"<LazyKernelList {len(self)} kernels ({state})>"


def plan_payload(plan: "ExecutionPlan") -> dict:
    """The persistable view of a lowered plan (everything but the graph)."""
    from repro.runtime.simulator import plan_arrays

    kernels = plan.kernels
    if isinstance(kernels, LazyKernelList):
        encoded, pickled = kernels._encoded, None
    else:
        encoded = _encode_kernels(kernels)
        pickled = None if encoded is not None else kernels
    return {
        "flow": plan.flow,
        "dispatch_profile": plan.dispatch_profile,
        "target": plan.target,
        "kernels_columnar": encoded,
        "kernels_pickled": pickled,
        "gemm_peak_scale_f32": plan.gemm_peak_scale_f32,
        "gemm_saturation_scale": plan.gemm_saturation_scale,
        "notes": plan.notes,
        # memoized derivatives: cheap to compute now (the lowering process
        # needs them moments later anyway), free for every later process.
        "fusion_rate": plan.non_gemm_fusion_rate(),
        "covered_nodes": plan.covered_node_count(),
        "arrays": plan_arrays(plan),
    }


def plan_from_payload(payload: dict, graph: "Graph") -> "ExecutionPlan":
    """Rebuild an :class:`ExecutionPlan` around the caller's graph handle.

    ``graph`` may be a materialized :class:`~repro.ir.graph.Graph` or a lazy
    :class:`~repro.sweep.cache.GraphRef`; the pre-seeded derivatives and the
    lazily-decoded kernel list serve the whole profiling path, so neither
    the graph nor the kernels are built unless something walks them.
    """
    from repro.flows.plan import ExecutionPlan
    from repro.runtime.simulator import _PLAN_ARRAYS_ATTR

    encoded = payload["kernels_columnar"]
    kernels = LazyKernelList(encoded) if encoded is not None else payload["kernels_pickled"]
    plan = ExecutionPlan(
        graph=graph,
        flow=payload["flow"],
        dispatch_profile=payload["dispatch_profile"],
        kernels=kernels,  # type: ignore[arg-type]
        target=payload["target"],
        gemm_peak_scale_f32=payload["gemm_peak_scale_f32"],
        gemm_saturation_scale=payload["gemm_saturation_scale"],
        notes=payload["notes"],
    )
    plan.__dict__["_non_gemm_fusion_rate"] = payload["fusion_rate"]
    plan.__dict__["_covered_node_count"] = payload["covered_nodes"]
    setattr(plan, _PLAN_ARRAYS_ATTR, payload["arrays"])
    return plan


# -- transform payloads -----------------------------------------------------


@dataclass
class StoredTransformResult:
    """A transform result rebuilt from the store: stats plus a lazy graph.

    The transformed graph itself is *not* persisted — its content hash is a
    deterministic derivation of the parent's, which is all the plan and
    memory caches key on.  ``graph`` is a :class:`~repro.sweep.cache.GraphRef`
    that re-runs the transform only if something walks the structure.
    """

    graph: object
    stats: object


def transform_payload(result: object) -> dict:
    """Persistable view of a transform result (stats only when possible)."""
    if hasattr(result, "graph") and hasattr(result, "stats"):
        return {"stats": result.stats, "full": None}
    return {"stats": None, "full": result}
