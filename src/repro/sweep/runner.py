"""The sweep runner: execute a :class:`SweepSpec` grid point by point.

One code path serves every figure/table harness and the CLI ``sweep``
subcommand.  Each point flows through the memoizing :mod:`~repro.sweep.cache`
(graph build, plan lowering, transforms, memory profiling are all shared
across points) and the vectorized simulator, so large cross-products cost a
small multiple of their unique work rather than of their point count.

For grids whose unique work dominates (many distinct models or sequence
lengths), ``SweepRunner(workers=N)`` fans points out over a process pool;
results come back in grid order regardless of completion order, so outputs
are identical to a serial run.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.errors import RegistryError
from repro.flows import get_flow
from repro.hardware import DeviceKind, get_platform
from repro.profiler.profiler import profile_graph
from repro.profiler.records import ProfileResult
from repro.sweep.cache import PLAN_CACHE, cached_transform
from repro.sweep.spec import SweepPoint, SweepSpec
from repro.sweep.store import ArtifactStore


@dataclass
class SweepRecord:
    """The outcome of one sweep point."""

    point: SweepPoint
    profile: ProfileResult
    #: accounting object returned by the point's graph transform, if any
    #: (e.g. :class:`~repro.quant.llm_int8.QuantizationStats`).
    transform_stats: object | None = None
    #: serving metrics for ``load`` points: a
    #: :class:`~repro.serving.metrics.ServingResult`, or a
    #: :class:`~repro.serving.metrics.ClusterResult` when the point also
    #: names an admission ``policy``; None for plain per-inference points.
    #: Already plan-free — pool workers ship it without a detach step.
    serving: object | None = None


@dataclass
class SweepResult:
    """All records of one sweep run, in grid order.

    ``cache_info`` is the :class:`~repro.sweep.cache.CacheStats` delta this
    run produced: per-stage ``hits`` (in-memory LRU), ``disk_hits``
    (persistent artifact store), and ``misses`` (computed from scratch).
    Serial runs measure the process-global cache directly; worker-pool runs
    (``workers > 1``) sum the per-point deltas each worker ships back with
    its records, so the counters cover every worker's per-process cache
    (initializer pre-warm promotions are excluded by design — they are
    attributable to no point).
    """

    spec: SweepSpec
    records: list[SweepRecord] = field(default_factory=list)
    wall_s: float = 0.0
    cache_info: dict[str, object] = field(default_factory=dict)

    @property
    def profiles(self) -> list[ProfileResult]:
        return [record.profile for record in self.records]

    def __len__(self) -> int:
        return len(self.records)


def run_point(point: SweepPoint) -> SweepRecord:
    """Profile one sweep point through the memoizing pipeline."""
    target = point.target
    platform = get_platform(point.platform)
    if target is DeviceKind.CPU:
        platform = platform.cpu_only()
    overrides = {} if point.seq_len is None else {"seq_len": point.seq_len}
    transform_stats = None
    model_name = point.model
    try:
        # a lazy handle: the build key alone names the graph's content hash,
        # so when the plan and memory caches (either tier) are warm the model
        # is never actually constructed.  Builders reject unknown overrides
        # with a TypeError, which surfaces at materialization — immediately
        # with the cache disabled, or anywhere inside the transform or
        # profile otherwise — hence the wide try.
        graph = PLAN_CACHE.graph_ref(point.model, point.batch_size, **overrides)
        if point.transform:
            transformed = cached_transform(point.transform, graph)
            graph = transformed.graph
            transform_stats = getattr(transformed, "stats", None)
            model_name = f"{point.model}-{point.transform}"
        profile = profile_graph(
            graph,
            get_flow(point.flow),
            platform,
            use_gpu=target,
            batch_size=point.batch_size,
            iterations=point.iterations,
            seed=point.seed,
            model_name=model_name,
        )
    except TypeError as exc:
        # only translate the builder's rejection of a sweep override (the
        # build is lazy, so it surfaces mid-profile); an unrelated TypeError
        # from a transform or the simulator keeps its own traceback.
        if not overrides or not any(key in str(exc) for key in overrides):
            raise
        raise RegistryError(
            f"model {point.model!r} does not accept sweep overrides {overrides}"
            f" ({exc}); drop the seq_len axis or restrict it to sequence models"
        ) from None
    serving = None
    if point.load is not None and point.policy is not None:
        # cluster points serve the load through a multi-replica router
        # (``record.serving`` holds a ClusterResult); the replicas' per-batch
        # plans come from the same cache the profile warmed.
        from repro.serving.cluster import serve_cluster_point

        serving = serve_cluster_point(point)
    elif point.load is not None:
        # load points additionally run the discrete-event serving engine;
        # its per-batch plans come from the same cache the profile warmed.
        from repro.serving.engine import serve_point

        serving = serve_point(point)
    return SweepRecord(
        point=point, profile=profile, transform_stats=transform_stats, serving=serving
    )


def _run_point_for_pool(point: SweepPoint) -> tuple[SweepRecord, dict[str, object]]:
    """Worker-side wrapper: shed the heavy per-record state before pickling.

    A ProfileResult lazily references its ExecutionPlan (and through it the
    whole Graph); shipping one independent copy per record back over IPC
    would grow linearly with the grid.  ``detach`` materializes the
    per-kernel records (still needed by reports) and drops every lazy
    backref — including any added after this wrapper was written.

    Alongside the record, the worker ships the per-point delta of its own
    process-local :data:`PLAN_CACHE` counters, so the parent can aggregate
    pool-wide cache activity that would otherwise be invisible to it.
    """
    before = PLAN_CACHE.stats.snapshot()
    record = run_point(point)
    record.profile.detach()
    return record, PLAN_CACHE.stats.delta_since(before)


def _warm_tasks(points: list[SweepPoint]) -> tuple[tuple, ...]:
    """Unique pre-warm combinations for a grid, in first-seen order.

    One entry per distinct profile combination; the trailing
    ``serve_max_batch`` carries the largest serving batch cap over the
    combo's load points (0 when the combo never serves) so workers can also
    warm the per-batch-size serving-cost entries.  Transform points are
    skipped: their plan/memory keys hang off the transformed graph's hash,
    which only running the transform can produce.
    """
    tasks: dict[tuple, int] = {}
    for point in points:
        if point.transform:
            continue
        key = (
            point.model,
            point.batch_size,
            point.seq_len,
            point.flow,
            point.target.value,
            point.platform,
        )
        serve = point.max_batch if point.load is not None else 0
        tasks[key] = max(tasks.get(key, 0), serve)
    return tuple(key + (serve,) for key, serve in tasks.items())


def _pool_init(store_directory: str | None, warm_tasks: tuple[tuple, ...]) -> None:
    """Process-pool initializer: attach the parent's store and pre-warm.

    Workers pick up an environment-configured store on import; when the
    parent was pointed at a store programmatically instead,
    ``store_directory`` re-attaches the same directory here.  Pre-warm then
    promotes each unique combination's plan / memory / serving entries from
    the shared disk store into the worker's LRU *before* any point runs, so
    per-point deltas start from a warm tier-1 exactly like a serial run
    against a warm store.  Best-effort by construction: a combination that
    cannot warm (model unknown in this process, store disabled, cold store)
    is skipped and the points simply compute as before.
    """
    if store_directory is not None and PLAN_CACHE.store is None:
        PLAN_CACHE.store = ArtifactStore(store_directory)
    if PLAN_CACHE.store is None:
        return
    for model, batch_size, seq_len, flow_name, device_value, platform_id, serve_cap in warm_tasks:
        try:
            flow = get_flow(flow_name)
            target = DeviceKind(device_value)
            overrides = {} if seq_len is None else {"seq_len": seq_len}
            graph = PLAN_CACHE.graph_ref(model, batch_size, **overrides)
            PLAN_CACHE.warm_from_store(flow, graph, target)
            if serve_cap:
                from repro.serving.engine import resolve_serving_target

                platform, serve_target = resolve_serving_target(
                    get_platform(platform_id), target
                )
                for size in range(1, serve_cap + 1):
                    batch_graph = PLAN_CACHE.graph_ref(model, size, **overrides)
                    PLAN_CACHE.warm_from_store(
                        flow, batch_graph, serve_target, platform=platform
                    )
        except Exception:  # pragma: no cover - warm-up must never fail a run
            continue


def _merge_cache_deltas(deltas) -> dict[str, object]:
    """Sum per-worker per-point cache deltas into one pool-wide delta."""
    merged: dict[str, object] = {"hits": {}, "misses": {}, "disk_hits": {}, "evictions": 0}
    for delta in deltas:
        for kind in ("hits", "misses", "disk_hits"):
            bucket: dict[str, int] = merged[kind]  # type: ignore[assignment]
            for stage, count in delta.get(kind, {}).items():
                bucket[stage] = bucket.get(stage, 0) + count
        merged["evictions"] = int(merged["evictions"]) + int(delta.get("evictions", 0))  # type: ignore[arg-type]
    return merged


class SweepRunner:
    """Executes sweep specs serially or across a process pool.

    ``workers <= 1`` runs in-process (the default, and the fastest choice
    whenever the memoization cache covers most of the grid, since workers
    cannot share a cache across processes).
    """

    def __init__(self, workers: int = 0):
        self.workers = workers

    def run(self, spec: SweepSpec) -> SweepResult:
        points = spec.points()
        started = time.perf_counter()
        stats_before = PLAN_CACHE.stats.snapshot()
        if self.workers and self.workers > 1 and len(points) > 1:
            workers = min(self.workers, len(points), os.cpu_count() or 1)
            chunksize = max(1, len(points) // (workers * 4))
            store = PLAN_CACHE.store
            store_directory = None if store is None else os.fspath(store.directory)
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_pool_init,
                initargs=(store_directory, _warm_tasks(points)),
            ) as pool:
                outcomes = list(pool.map(_run_point_for_pool, points, chunksize=chunksize))
            records = [record for record, _ in outcomes]
            # workers run against per-process caches; each point's delta
            # comes back with its record and sums into one pool-wide view.
            cache_info = _merge_cache_deltas(delta for _, delta in outcomes)
        else:
            records = [run_point(point) for point in points]
            # cache activity attributable to this run on the in-process cache.
            cache_info = PLAN_CACHE.stats.delta_since(stats_before)
        return SweepResult(
            spec=spec,
            records=records,
            wall_s=time.perf_counter() - started,
            cache_info=cache_info,
        )


def run_sweep(spec: SweepSpec, workers: int = 0) -> SweepResult:
    """Convenience wrapper: build a runner and execute ``spec``."""
    return SweepRunner(workers=workers).run(spec)
