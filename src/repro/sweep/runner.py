"""The sweep runner: execute a :class:`SweepSpec` grid point by point.

One code path serves every figure/table harness and the CLI ``sweep``
subcommand.  Each point flows through the memoizing :mod:`~repro.sweep.cache`
(graph build, plan lowering, transforms, memory profiling are all shared
across points) and the vectorized simulator, so large cross-products cost a
small multiple of their unique work rather than of their point count.

For grids whose unique work dominates (many distinct models or sequence
lengths), ``SweepRunner(workers=N)`` fans points out over a process pool;
results come back in grid order regardless of completion order, so outputs
are identical to a serial run.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.errors import RegistryError
from repro.flows import get_flow
from repro.hardware import DeviceKind, get_platform
from repro.profiler.profiler import profile_graph
from repro.profiler.records import ProfileResult
from repro.sweep.cache import PLAN_CACHE, cached_transform
from repro.sweep.spec import SweepPoint, SweepSpec


@dataclass
class SweepRecord:
    """The outcome of one sweep point."""

    point: SweepPoint
    profile: ProfileResult
    #: accounting object returned by the point's graph transform, if any
    #: (e.g. :class:`~repro.quant.llm_int8.QuantizationStats`).
    transform_stats: object | None = None
    #: serving metrics for ``load`` points: a
    #: :class:`~repro.serving.metrics.ServingResult`, or a
    #: :class:`~repro.serving.metrics.ClusterResult` when the point also
    #: names an admission ``policy``; None for plain per-inference points.
    #: Already plan-free — pool workers ship it without a detach step.
    serving: object | None = None


@dataclass
class SweepResult:
    """All records of one sweep run, in grid order.

    ``cache_info`` is the :class:`~repro.sweep.cache.CacheStats` delta this
    run produced on the process-global cache: per-stage ``hits`` (in-memory
    LRU), ``disk_hits`` (persistent artifact store), and ``misses``
    (computed from scratch).  Worker-pool runs (``workers > 1``) hit each
    worker's own per-process cache, so the parent-side delta is empty for
    them — only serial runs report meaningful counters.
    """

    spec: SweepSpec
    records: list[SweepRecord] = field(default_factory=list)
    wall_s: float = 0.0
    cache_info: dict[str, object] = field(default_factory=dict)

    @property
    def profiles(self) -> list[ProfileResult]:
        return [record.profile for record in self.records]

    def __len__(self) -> int:
        return len(self.records)


def run_point(point: SweepPoint) -> SweepRecord:
    """Profile one sweep point through the memoizing pipeline."""
    target = point.target
    platform = get_platform(point.platform)
    if target is DeviceKind.CPU:
        platform = platform.cpu_only()
    overrides = {} if point.seq_len is None else {"seq_len": point.seq_len}
    transform_stats = None
    model_name = point.model
    try:
        # a lazy handle: the build key alone names the graph's content hash,
        # so when the plan and memory caches (either tier) are warm the model
        # is never actually constructed.  Builders reject unknown overrides
        # with a TypeError, which surfaces at materialization — immediately
        # with the cache disabled, or anywhere inside the transform or
        # profile otherwise — hence the wide try.
        graph = PLAN_CACHE.graph_ref(point.model, point.batch_size, **overrides)
        if point.transform:
            transformed = cached_transform(point.transform, graph)
            graph = transformed.graph
            transform_stats = getattr(transformed, "stats", None)
            model_name = f"{point.model}-{point.transform}"
        profile = profile_graph(
            graph,
            get_flow(point.flow),
            platform,
            use_gpu=target,
            batch_size=point.batch_size,
            iterations=point.iterations,
            seed=point.seed,
            model_name=model_name,
        )
    except TypeError as exc:
        # only translate the builder's rejection of a sweep override (the
        # build is lazy, so it surfaces mid-profile); an unrelated TypeError
        # from a transform or the simulator keeps its own traceback.
        if not overrides or not any(key in str(exc) for key in overrides):
            raise
        raise RegistryError(
            f"model {point.model!r} does not accept sweep overrides {overrides}"
            f" ({exc}); drop the seq_len axis or restrict it to sequence models"
        ) from None
    serving = None
    if point.load is not None and point.policy is not None:
        # cluster points serve the load through a multi-replica router
        # (``record.serving`` holds a ClusterResult); the replicas' per-batch
        # plans come from the same cache the profile warmed.
        from repro.serving.cluster import serve_cluster_point

        serving = serve_cluster_point(point)
    elif point.load is not None:
        # load points additionally run the discrete-event serving engine;
        # its per-batch plans come from the same cache the profile warmed.
        from repro.serving.engine import serve_point

        serving = serve_point(point)
    return SweepRecord(
        point=point, profile=profile, transform_stats=transform_stats, serving=serving
    )


def _run_point_for_pool(point: SweepPoint) -> SweepRecord:
    """Worker-side wrapper: shed the heavy per-record state before pickling.

    A ProfileResult lazily references its ExecutionPlan (and through it the
    whole Graph); shipping one independent copy per record back over IPC
    would grow linearly with the grid.  ``detach`` materializes the
    per-kernel records (still needed by reports) and drops every lazy
    backref — including any added after this wrapper was written.
    """
    record = run_point(point)
    record.profile.detach()
    return record


class SweepRunner:
    """Executes sweep specs serially or across a process pool.

    ``workers <= 1`` runs in-process (the default, and the fastest choice
    whenever the memoization cache covers most of the grid, since workers
    cannot share a cache across processes).
    """

    def __init__(self, workers: int = 0):
        self.workers = workers

    def run(self, spec: SweepSpec) -> SweepResult:
        points = spec.points()
        started = time.perf_counter()
        stats_before = PLAN_CACHE.stats.snapshot()
        if self.workers and self.workers > 1 and len(points) > 1:
            workers = min(self.workers, len(points), os.cpu_count() or 1)
            chunksize = max(1, len(points) // (workers * 4))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                records = list(pool.map(_run_point_for_pool, points, chunksize=chunksize))
        else:
            records = [run_point(point) for point in points]
        # cache activity attributable to this run; note that worker-pool runs
        # hit per-process caches, so the parent-side delta is empty there.
        return SweepResult(
            spec=spec,
            records=records,
            wall_s=time.perf_counter() - started,
            cache_info=PLAN_CACHE.stats.delta_since(stats_before),
        )


def run_sweep(spec: SweepSpec, workers: int = 0) -> SweepResult:
    """Convenience wrapper: build a runner and execute ``spec``."""
    return SweepRunner(workers=workers).run(spec)
