"""The sweep engine: memoized, vectorized execution of experiment grids.

Layers (see the README architecture section):

* :mod:`repro.sweep.cache`  — :class:`PlanCache`, the LRU memoization of
  model builds, plan lowerings, graph transforms, and memory profiles.
* :mod:`repro.sweep.store`  — :class:`ArtifactStore`, the persistent
  content-addressed disk tier behind the PlanCache (``REPRO_CACHE_DIR``).
* :mod:`repro.sweep.spec`   — :class:`SweepSpec`/:class:`SweepPoint`,
  declarative cross-product grids with explicit nesting order.
* :mod:`repro.sweep.runner` — :class:`SweepRunner`, serial or
  process-parallel execution producing :class:`SweepRecord` lists.

``spec``/``runner`` are exposed lazily: the profiler imports
:mod:`repro.sweep.cache` while the runner imports the profiler, and the lazy
indirection keeps that dependency chain acyclic at import time.
"""

from repro.sweep.cache import (
    PLAN_CACHE,
    CacheStats,
    GraphRef,
    PlanCache,
    cached_build_model,
    cached_lower,
    cached_profile_memory,
    cached_transform,
    get_transform,
    register_transform,
)
from repro.sweep.store import (
    STORE_SCHEMA_VERSION,
    ArtifactStore,
    StoreInfo,
    code_fingerprint,
    default_cache_dir,
)

_LAZY = {
    "SweepPoint": "repro.sweep.spec",
    "SweepSpec": "repro.sweep.spec",
    "DIMENSIONS": "repro.sweep.spec",
    "DEVICE_GPU": "repro.sweep.spec",
    "DEVICE_CPU": "repro.sweep.spec",
    "DEVICE_MODES": "repro.sweep.spec",
    "SweepRecord": "repro.sweep.runner",
    "SweepResult": "repro.sweep.runner",
    "SweepRunner": "repro.sweep.runner",
    "run_point": "repro.sweep.runner",
    "run_sweep": "repro.sweep.runner",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "PLAN_CACHE",
    "STORE_SCHEMA_VERSION",
    "ArtifactStore",
    "CacheStats",
    "GraphRef",
    "PlanCache",
    "StoreInfo",
    "cached_build_model",
    "cached_lower",
    "cached_profile_memory",
    "cached_transform",
    "code_fingerprint",
    "default_cache_dir",
    "get_transform",
    "register_transform",
    *sorted(_LAZY),
]
