"""TorchInductor (torch.compile) deployment flow.

Inductor generates fused Triton kernels for pointwise/normalization chains
and removes eager dispatch overhead, but — as the paper's Fig. 8 middle bars
show — it does not fold normalization into GEMM kernels the way TensorRT's
CONV+BN+ReLU pattern does, so a substantial non-GEMM share survives.

Pipeline (assembled by ``DeploymentFlow.build_pipeline`` from the knobs
below): fusion -> placement(uniform) -> construct(collapse=1) ->
sync-insertion -> metadata-elision.
"""

from __future__ import annotations

from repro.flows.base import DeploymentFlow
from repro.flows.fusion import FusionConfig


class TorchInductorFlow(DeploymentFlow):
    name = "torchinductor"
    dispatch_profile = "compiled"
    fusion = FusionConfig(
        gemm_epilogue=False,
        pointwise_chains=True,
        chain_norms=True,
        max_chain=8,
    )
    collapses_composites = True
    # torch.compile keeps cuBLAS fp32 semantics but its autotuner picks
    # better-shaped kernels for the small batched GEMMs eager hits worst.
    gemm_peak_scale_f32 = 1.0
    gemm_saturation_scale = 0.45
