"""The pre-pass-pipeline planner, kept as an executable specification.

This module preserves the monolithic ``DeploymentFlow.lower`` algorithm
exactly as it existed before lowering was decomposed into
:mod:`repro.flows.passes`.  It is not used by any production path — the
equivalence suite (``tests/test_passes.py``) lowers every registered model
through both implementations and asserts the plans match kernel-for-kernel,
the same role :func:`repro.runtime.simulator.simulate_reference` plays for
the vectorized simulator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import PlanError
from repro.hardware.device import DeviceKind
from repro.ir.graph import Graph
from repro.ir.node import Node
from repro.ops.base import OpCost
from repro.flows.fusion import fuse_graph, group_category
from repro.flows.passes.construct import node_dtype
from repro.flows.plan import ExecutionPlan, PlannedKernel, group_cost

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flows.base import DeploymentFlow
    from repro.flows.passes.placement import PlacementPolicy


def reference_lower(
    flow: "DeploymentFlow", graph: Graph, use_gpu: bool = True
) -> ExecutionPlan:
    """Lower ``graph`` with the pre-refactor monolithic planner."""
    graph.validate()
    result = fuse_graph(graph, flow.fusion)
    policy = flow.placement_policy()
    # uniform flows resolve the device once, not per node
    device = None
    if flow.uniform_placement:
        device = DeviceKind.GPU if use_gpu else DeviceKind.CPU
    kernels: list[PlannedKernel] = []
    nodes = graph.nodes
    node_costs = graph.node_costs()
    for group in result.groups:
        if len(group) == 1:
            kernels.append(
                _plan_single(flow, policy, graph, nodes[group[0]], use_gpu, device, node_costs)
            )
        else:
            kernels.append(_plan_group(flow, policy, graph, group, use_gpu))
    plan = ExecutionPlan(
        graph=graph,
        flow=flow.name,
        dispatch_profile=flow.dispatch_profile,
        kernels=kernels,
        target=DeviceKind.GPU if use_gpu else DeviceKind.CPU,
        gemm_peak_scale_f32=flow.gemm_peak_scale_f32,
        gemm_saturation_scale=flow.gemm_saturation_scale,
    )
    plan.validate()
    return plan


def _plan_single(
    flow: "DeploymentFlow",
    policy: "PlacementPolicy",
    graph: Graph,
    node: Node,
    use_gpu: bool,
    device: DeviceKind | None = None,
    node_costs: list | None = None,
) -> PlannedKernel:
    if device is None:
        device = policy.device_for(node, use_gpu)
    fallback = use_gpu and device is DeviceKind.CPU
    metadata = node.op.is_metadata_only and not fallback
    if fallback:
        # an op forced off the accelerator materializes its data on the
        # host: inputs cross PCIe down, outputs cross back up.
        in_bytes = sum(v.spec.nbytes for v in node.inputs)
        out_bytes = sum(s.nbytes for s in node.outputs)
        cost = OpCost(flops=0, bytes_read=in_bytes, bytes_written=out_bytes)
        return PlannedKernel(
            name=node.qualified_name,
            node_ids=(node.node_id,),
            op_kinds=(node.op.kind,),
            category=node.op.category,
            device=DeviceKind.CPU,
            cost=cost,
            dtype=node_dtype(node),
            metadata_only=False,
            is_custom=node.op.is_custom_kernel,
            launch_count=1,
            transfer_bytes_in=in_bytes,
            transfer_bytes_out=out_bytes,
        )
    if node_costs is None:
        node_costs = graph.node_costs()
    cost = node_costs[node.node_id]
    # data-dependent ops (nonzero, dynamic shapes) stall the pipeline with
    # a device->host round trip to read their result size.
    sync_bytes = 0
    if device is DeviceKind.GPU and node.op.forces_sync:
        sync_bytes = sum(s.nbytes for s in node.outputs)
    launches = 1
    if not flow.collapses_composites and node.op.eager_kernels > 1:
        launches = node.op.eager_kernels
        # full-size sub-kernels of a Python composite re-stream the tensor
        passes = node.op.traffic_passes
        cost = OpCost(
            flops=cost.flops,
            bytes_read=cost.bytes_read * passes,
            bytes_written=cost.bytes_written * passes,
        )
    return PlannedKernel(
        name=node.qualified_name,
        node_ids=(node.node_id,),
        op_kinds=(node.op.kind,),
        category=node.op.category,
        device=device,
        cost=cost,
        dtype=node_dtype(node),
        metadata_only=metadata and not sync_bytes,
        is_custom=node.op.is_custom_kernel and not flow.collapses_composites,
        launch_count=launches,
        transfer_bytes_out=sync_bytes,
    )


def _plan_group(
    flow: "DeploymentFlow",
    policy: "PlacementPolicy",
    graph: Graph,
    group: tuple[int, ...],
    use_gpu: bool,
) -> PlannedKernel:
    nodes = [graph.nodes[i] for i in group]
    devices = {policy.device_for(n, use_gpu) for n in nodes}
    if len(devices) > 1:
        raise PlanError(f"fused group {group} spans devices {devices}")
    category = group_category(graph, group)
    first = nodes[0]
    return PlannedKernel(
        name=f"{first.qualified_name}+{len(group) - 1}",
        node_ids=tuple(group),
        op_kinds=tuple(n.op.kind for n in nodes),
        category=category,
        device=devices.pop(),
        cost=group_cost(graph, group),
        dtype=node_dtype(first),
        metadata_only=False,
        is_custom=False,  # fused kernels are generated, not hand-written
        launch_count=1,
    )
