"""Deployment flow abstraction.

A flow lowers an operator graph into an :class:`ExecutionPlan` the way a real
serving stack would: it decides fusion, per-op placement (GPU vs CPU
fallback), whether composite Python ops run as many kernels or one, and the
per-kernel host dispatch overhead profile.

Lowering is a *pass pipeline* (:mod:`repro.flows.passes`): each concrete flow
is a declarative list of named passes plus tuning knobs, and
:meth:`DeploymentFlow.lower` just runs its :class:`~repro.flows.passes.PassManager`
and freezes the resulting kernel drafts.  The pipeline's content hash
(:meth:`DeploymentFlow.pipeline_signature`) is what the sweep
:class:`~repro.sweep.cache.PlanCache` keys plans on.
"""

from __future__ import annotations

import abc
import hashlib
from typing import TYPE_CHECKING, ClassVar

from repro.errors import PlanError
from repro.ir.graph import Graph
from repro.flows.fusion import FusionConfig
from repro.flows.passes import (
    CompositeExpansionPass,
    FusionPass,
    KernelConstructionPass,
    MetadataElisionPass,
    PassManager,
    PlacementPass,
    PlacementPolicy,
    RetargetPass,
    SyncInsertionPass,
    TransferInsertionPass,
    UniformPlacement,
)
from repro.flows.passes.state import LoweringState
from repro.flows.plan import ExecutionPlan, PlannedKernel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.device import DeviceKind


class DeploymentFlow(abc.ABC):
    """Base class for PyTorch-eager, TorchInductor, TensorRT, and ORT flows."""

    name: ClassVar[str]
    dispatch_profile: ClassVar[str]
    fusion: ClassVar[FusionConfig] = FusionConfig()
    #: compiled flows collapse composite Python ops into one kernel.
    collapses_composites: ClassVar[bool] = True
    #: fp32 GEMM rate multiplier: engine flows enable TF32 tensor cores on
    #: Ampere-class GPUs (8x the fp32 pipe rate); eager PyTorch ships with
    #: TF32 matmul disabled.
    gemm_peak_scale_f32: ClassVar[float] = 1.0
    #: scale on the device's small-GEMM saturation size: autotuned engines
    #: pick better tilings for small problems than stock cuBLAS heuristics.
    gemm_saturation_scale: ClassVar[float] = 1.0
    #: True when placement puts every node on the same device for a given
    #: ``use_gpu`` (all flows except ORT's per-op fallback).  Enables
    #: :meth:`derive_plan` re-targeting instead of a full re-lowering.
    uniform_placement: ClassVar[bool] = True

    # -- pipeline declaration -------------------------------------------------

    def placement_policy(self) -> PlacementPolicy:
        """The flow's placement policy; per-op-fallback flows override this."""
        return UniformPlacement()

    def build_pipeline(self) -> PassManager:
        """Assemble the flow's lowering pipeline from its knobs.

        Concrete flows override this to declare their pass list explicitly;
        the default assembly covers the common shapes (uniform vs per-op
        placement, collapsing vs eager composites) for custom flows that only
        set knobs.  The pass ordering contract is documented in
        :mod:`repro.flows.passes.manager`.
        """
        policy = self.placement_policy()
        passes = [
            FusionPass(self.fusion),
            PlacementPass(policy),
            KernelConstructionPass(collapse=self.collapses_composites),
        ]
        if not policy.is_uniform:
            passes.append(TransferInsertionPass())
        if not self.collapses_composites:
            passes.append(CompositeExpansionPass())
        passes.extend((SyncInsertionPass(), MetadataElisionPass()))
        return PassManager(passes)

    @property
    def pipeline(self) -> PassManager:
        """The flow's pass pipeline, built once per instance."""
        built = self.__dict__.get("_pipeline")
        if built is None:
            built = self.build_pipeline()
            self.__dict__["_pipeline"] = built
        return built

    def pipeline_signature(self) -> str:
        """Content hash of everything that determines this flow's plans.

        Folds the flow-level knobs (name, dispatch profile, GEMM scales) with
        the ordered signatures of every pipeline pass, so the sweep cache key
        survives refactors that preserve behavior and invalidates on any knob
        change — including subclass overrides that keep the flow name.
        """
        signature = self.__dict__.get("_pipeline_signature")
        if signature is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(
                f"{self.name}|{self.dispatch_profile}"
                f"|{self.gemm_peak_scale_f32!r}|{self.gemm_saturation_scale!r}"
                f"|{int(self.uniform_placement)}".encode()
            )
            digest.update(self.pipeline.signature().encode())
            signature = digest.hexdigest()
            self.__dict__["_pipeline_signature"] = signature
        return signature

    # -- lowering --------------------------------------------------------------

    def lower(
        self,
        graph: Graph,
        use_gpu: "bool | str | DeviceKind" = True,
        record_provenance: bool = False,
    ) -> ExecutionPlan:
        """Lower ``graph`` into an execution plan for simulation.

        ``use_gpu`` keeps its historical name and booleans but accepts any
        :class:`~repro.hardware.device.DeviceKind` (or device-mode string)
        as the lowering target — e.g. ``DeviceKind.NPU`` for the edge flows.
        With ``record_provenance``, the plan's ``notes`` carry a per-pass
        trace and per-kernel provenance tags (``nongemm-bench inspect``).
        """
        graph.validate()
        state = self.pipeline.run(graph, use_gpu, record_provenance=record_provenance)
        plan = self._finalize(state)
        plan.validate()
        return plan

    def supports_derivation(self) -> bool:
        """True when :meth:`derive_plan` reproduces :meth:`lower` exactly.

        Requires uniform placement *and* a pipeline whose refinement passes
        are all known to the re-targeting mini-pipeline: a custom refinement
        pass would be silently skipped during derivation, so its presence
        opts the flow out of sibling-plan derivation (the sweep cache then
        always lowers in full).
        """
        if not self.uniform_placement:
            return False
        derivable = {
            FusionPass,
            PlacementPass,
            KernelConstructionPass,
            # device-independent (composite scaling is baked into the source
            # kernels) or a no-op for uniform flows (no fallback drafts):
            CompositeExpansionPass,
            TransferInsertionPass,
            # re-run by derive_plan:
            SyncInsertionPass,
            MetadataElisionPass,
        }
        for p in self.pipeline.passes:
            # exact types, not isinstance: a subclass of a stock pass carries
            # behavior the re-targeting mini-pipeline would not reproduce.
            if type(p) not in derivable:
                return False
            # trust the pipeline's actual policy, not the uniform_placement
            # declaration: a knob-only flow overriding placement_policy()
            # must not be derived with its fallback placements dropped.
            if type(p) is PlacementPass and not p.policy.is_uniform:
                return False
        return True

    def derive_plan(
        self, source: ExecutionPlan, use_gpu: "bool | str | DeviceKind"
    ) -> ExecutionPlan:
        """Re-target an already-lowered plan to another device class.

        Valid only when :meth:`supports_derivation` holds: the kernel
        partition, fused costs, dtypes, and launch counts are all
        device-independent, so the opposite-device plan differs only in
        placement and the device-sensitive refinements (syncs, metadata
        elision), which re-run here as a short pipeline over re-targeted
        drafts.  Produces exactly what ``lower(graph, use_gpu=...)`` would,
        for a fraction of the cost — the sweep cache uses this when it
        already holds the sibling plan.
        """
        if not self.uniform_placement:
            raise PlanError(f"flow {self.name} places per-op; cannot derive plans")
        if not self.supports_derivation():
            raise PlanError(
                f"flow {self.name} has custom refinement passes; re-targeting"
                " would skip them — lower the graph in full instead"
            )
        manager = PassManager(
            (RetargetPass(source), SyncInsertionPass(), MetadataElisionPass())
        )
        # a plan served from the persistent store may hold a lazy GraphRef;
        # re-targeting walks graph structure, so resolve it here.
        state = manager.run(source.graph.materialize(), use_gpu)
        return self._finalize(state)

    def _finalize(self, state: LoweringState) -> ExecutionPlan:
        """Freeze kernel drafts into an immutable :class:`ExecutionPlan`."""
        assert state.drafts is not None, "pipeline produced no kernel drafts"
        kernels = [
            PlannedKernel(
                draft.name,
                draft.node_ids,
                draft.op_kinds,
                draft.category,
                draft.device,
                draft.cost,
                draft.dtype,
                draft.metadata_only,
                draft.is_custom,
                draft.launch_count,
                draft.transfer_bytes_in,
                draft.transfer_bytes_out,
            )
            for draft in state.drafts
        ]
        plan = ExecutionPlan(
            graph=state.graph,
            flow=self.name,
            dispatch_profile=self.dispatch_profile,
            kernels=kernels,
            target=state.target,
            gemm_peak_scale_f32=self.gemm_peak_scale_f32,
            gemm_saturation_scale=self.gemm_saturation_scale,
        )
        if state.record_provenance:
            plan.notes["pipeline_signature"] = self.pipeline_signature()
            plan.notes["passes"] = [
                {"pass": trace.pass_name, **trace.summary} for trace in state.trace
            ]
            plan.notes["kernel_provenance"] = tuple(
                tuple(draft.provenance) if draft.provenance else ()
                for draft in state.drafts
            )
        return plan
