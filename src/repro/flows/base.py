"""Deployment flow abstraction.

A flow lowers an operator graph into an :class:`ExecutionPlan` the way a real
serving stack would: it decides fusion, per-op placement (GPU vs CPU
fallback), whether composite Python ops run as many kernels or one, and the
per-kernel host dispatch overhead profile.
"""

from __future__ import annotations

import abc
from typing import ClassVar

from repro.errors import PlanError
from repro.hardware.device import DeviceKind
from repro.ir.dtype import DType
from repro.ir.graph import Graph
from repro.ir.node import Node
from repro.ops.base import OpCategory, OpCost
from repro.flows.fusion import FusionConfig, fuse_graph, group_category
from repro.flows.plan import ExecutionPlan, PlannedKernel, group_cost


class DeploymentFlow(abc.ABC):
    """Base class for PyTorch-eager, TorchInductor, TensorRT, and ORT flows."""

    name: ClassVar[str]
    dispatch_profile: ClassVar[str]
    fusion: ClassVar[FusionConfig] = FusionConfig()
    #: compiled flows collapse composite Python ops into one kernel.
    collapses_composites: ClassVar[bool] = True
    #: fp32 GEMM rate multiplier: engine flows enable TF32 tensor cores on
    #: Ampere-class GPUs (8x the fp32 pipe rate); eager PyTorch ships with
    #: TF32 matmul disabled.
    gemm_peak_scale_f32: ClassVar[float] = 1.0
    #: scale on the device's small-GEMM saturation size: autotuned engines
    #: pick better tilings for small problems than stock cuBLAS heuristics.
    gemm_saturation_scale: ClassVar[float] = 1.0
    #: True when ``placement`` puts every node on the same device for a given
    #: ``use_gpu`` (all flows except ORT's per-op fallback).  Enables
    #: :meth:`derive_plan` re-targeting instead of a full re-lowering.
    uniform_placement: ClassVar[bool] = True

    def lower(self, graph: Graph, use_gpu: bool = True) -> ExecutionPlan:
        """Lower ``graph`` into an execution plan for simulation."""
        graph.validate()
        result = fuse_graph(graph, self.fusion)
        # uniform flows resolve the device once, not per node
        device = None
        if self.uniform_placement:
            device = DeviceKind.GPU if use_gpu else DeviceKind.CPU
        kernels: list[PlannedKernel] = []
        nodes = graph.nodes
        node_costs = graph.node_costs()
        for group in result.groups:
            if len(group) == 1:
                kernels.append(
                    self._plan_single(graph, nodes[group[0]], use_gpu, device, node_costs)
                )
            else:
                kernels.append(self._plan_group(graph, group, use_gpu))
        plan = ExecutionPlan(
            graph=graph,
            flow=self.name,
            dispatch_profile=self.dispatch_profile,
            kernels=kernels,
            gemm_peak_scale_f32=self.gemm_peak_scale_f32,
            gemm_saturation_scale=self.gemm_saturation_scale,
        )
        plan.validate()
        return plan

    def derive_plan(self, source: ExecutionPlan, use_gpu: bool) -> ExecutionPlan:
        """Re-target an already-lowered plan to the other device class.

        Valid only for uniform-placement flows: the kernel partition, fused
        costs, dtypes, and launch counts are all device-independent, so the
        opposite-device plan differs only in placement, the metadata-only
        flag (data-dependent syncs exist on GPU only), and sync transfers.
        Produces exactly what ``lower(graph, use_gpu=...)`` would, for a
        fraction of the cost — the sweep cache uses this when it already
        holds the sibling plan.
        """
        if not self.uniform_placement:
            raise PlanError(f"flow {self.name} places per-op; cannot derive plans")
        graph = source.graph
        device = DeviceKind.GPU if use_gpu else DeviceKind.CPU
        kernels: list[PlannedKernel] = []
        for kernel in source.kernels:
            metadata_only = False
            sync_bytes = 0
            if len(kernel.node_ids) == 1:
                node = graph.nodes[kernel.node_ids[0]]
                if use_gpu and node.op.forces_sync:
                    sync_bytes = sum(s.nbytes for s in node.outputs)
                metadata_only = node.op.is_metadata_only and not sync_bytes
            kernels.append(
                PlannedKernel(
                    name=kernel.name,
                    node_ids=kernel.node_ids,
                    op_kinds=kernel.op_kinds,
                    category=kernel.category,
                    device=device,
                    cost=kernel.cost,
                    dtype=kernel.dtype,
                    metadata_only=metadata_only,
                    is_custom=kernel.is_custom,
                    launch_count=kernel.launch_count,
                    transfer_bytes_out=sync_bytes,
                )
            )
        return ExecutionPlan(
            graph=graph,
            flow=self.name,
            dispatch_profile=self.dispatch_profile,
            kernels=kernels,
            gemm_peak_scale_f32=self.gemm_peak_scale_f32,
            gemm_saturation_scale=self.gemm_saturation_scale,
        )

    # -- hooks ---------------------------------------------------------------

    def placement(self, node: Node, use_gpu: bool) -> DeviceKind:
        """Device for one node; ORT overrides this for unsupported ops."""
        return DeviceKind.GPU if use_gpu else DeviceKind.CPU

    # -- kernel construction ---------------------------------------------------

    def _plan_single(
        self,
        graph: Graph,
        node: Node,
        use_gpu: bool,
        device: DeviceKind | None = None,
        node_costs: list | None = None,
    ) -> PlannedKernel:
        if device is None:
            device = self.placement(node, use_gpu)
        fallback = use_gpu and device is DeviceKind.CPU
        metadata = node.op.is_metadata_only and not fallback
        if fallback:
            # an op forced off the accelerator materializes its data on the
            # host: inputs cross PCIe down, outputs cross back up.
            in_bytes = sum(v.spec.nbytes for v in node.inputs)
            out_bytes = sum(s.nbytes for s in node.outputs)
            cost = OpCost(flops=0, bytes_read=in_bytes, bytes_written=out_bytes)
            return PlannedKernel(
                name=node.qualified_name,
                node_ids=(node.node_id,),
                op_kinds=(node.op.kind,),
                category=node.op.category,
                device=DeviceKind.CPU,
                cost=cost,
                dtype=_node_dtype(node),
                metadata_only=False,
                is_custom=node.op.is_custom_kernel,
                launch_count=1,
                transfer_bytes_in=in_bytes,
                transfer_bytes_out=out_bytes,
            )
        if node_costs is None:
            node_costs = graph.node_costs()
        cost = node_costs[node.node_id]
        # data-dependent ops (nonzero, dynamic shapes) stall the pipeline with
        # a device->host round trip to read their result size.
        sync_bytes = 0
        if device is DeviceKind.GPU and node.op.forces_sync:
            sync_bytes = sum(s.nbytes for s in node.outputs)
        launches = 1
        if not self.collapses_composites and node.op.eager_kernels > 1:
            launches = node.op.eager_kernels
            # full-size sub-kernels of a Python composite re-stream the tensor
            passes = node.op.traffic_passes
            cost = OpCost(
                flops=cost.flops,
                bytes_read=cost.bytes_read * passes,
                bytes_written=cost.bytes_written * passes,
            )
        return PlannedKernel(
            name=node.qualified_name,
            node_ids=(node.node_id,),
            op_kinds=(node.op.kind,),
            category=node.op.category,
            device=device,
            cost=cost,
            dtype=_node_dtype(node),
            metadata_only=metadata and not sync_bytes,
            is_custom=node.op.is_custom_kernel and not self.collapses_composites,
            launch_count=launches,
            transfer_bytes_out=sync_bytes,
        )

    def _plan_group(self, graph: Graph, group: tuple[int, ...], use_gpu: bool) -> PlannedKernel:
        nodes = [graph.nodes[i] for i in group]
        devices = {self.placement(n, use_gpu) for n in nodes}
        if len(devices) > 1:
            raise PlanError(f"fused group {group} spans devices {devices}")
        category = group_category(graph, group)
        first = nodes[0]
        return PlannedKernel(
            name=f"{first.qualified_name}+{len(group) - 1}",
            node_ids=tuple(group),
            op_kinds=tuple(n.op.kind for n in nodes),
            category=category,
            device=devices.pop(),
            cost=group_cost(graph, group),
            dtype=_node_dtype(first),
            metadata_only=False,
            is_custom=False,  # fused kernels are generated, not hand-written
            launch_count=1,
        )


def _node_dtype(node: Node) -> DType:
    """Execution precision of a node: its first tensor input, else its output."""
    if node.inputs:
        return node.inputs[0].spec.dtype
    return node.outputs[0].dtype
