"""Pattern-based operator fusion.

Two fusion mechanisms, mirroring what real deployment flows do:

* **GEMM epilogue fusion** — a GEMM followed by a single-consumer chain of
  normalization/activation/elementwise ops folds the chain into the GEMM
  kernel (TensorRT's CONV+BN+ReLU pattern; the paper credits this for DETR's
  13.5x non-GEMM speedup).
* **Pointwise chain fusion** — runs of single-consumer elementwise-like ops
  merge into one generated kernel (TorchInductor-style).

A :class:`FusionConfig` says which mechanism a flow applies and to which
operator categories; :func:`fuse_graph` returns disjoint node groups in
topological order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.graph import Graph
from repro.ir.node import Node
from repro.ops.base import OpCategory

#: categories that behave pointwise enough to fuse into chains / epilogues.
POINTWISE_CATEGORIES = frozenset(
    {
        OpCategory.ELEMENTWISE,
        OpCategory.ACTIVATION,
        OpCategory.QDQ,
    }
)

#: categories fusible when the flow also fuses normalization/logit kernels.
NORM_LIKE_CATEGORIES = frozenset({OpCategory.NORMALIZATION, OpCategory.LOGIT})

#: the norm kinds TensorRT folds into GEMM kernels (the CONV+BN+ReLU
#: pattern).  LayerNorm/RMSNorm stay standalone kernels even in engines.
EPILOGUE_NORM_KINDS = frozenset(
    {"batch_norm2d", "frozen_batch_norm2d", "group_norm"}
)


@dataclass(frozen=True)
class FusionConfig:
    """What a deployment flow is willing to fuse."""

    #: fold pointwise/norm chains into a preceding GEMM kernel.
    gemm_epilogue: bool = False
    #: max epilogue ops folded into one GEMM.
    max_epilogue: int = 3
    #: fuse standalone pointwise chains into one kernel.
    pointwise_chains: bool = False
    #: include normalization/softmax in GEMM epilogues (TensorRT's
    #: CONV+BN+ReLU pattern).
    epilogue_norms: bool = False
    #: include normalization/softmax in standalone chains (TorchInductor's
    #: generated reduction+pointwise kernels).
    chain_norms: bool = False
    #: max ops per pointwise chain.
    max_chain: int = 8

    def fusible(self, category: OpCategory, in_epilogue: bool = False, kind: str = "") -> bool:
        if category in POINTWISE_CATEGORIES:
            return True
        if in_epilogue:
            # GEMM epilogues absorb the BatchNorm family only (CONV+BN+ReLU);
            # LayerNorm/Softmax stay standalone kernels even in engines.
            return self.epilogue_norms and kind in EPILOGUE_NORM_KINDS
        return self.chain_norms and category in NORM_LIKE_CATEGORIES


@dataclass
class FusionResult:
    """Disjoint groups of node ids, in topological order of their first node."""

    groups: list[tuple[int, ...]] = field(default_factory=list)

    @property
    def fused_groups(self) -> list[tuple[int, ...]]:
        return [g for g in self.groups if len(g) > 1]


def fuse_graph(graph: Graph, config: FusionConfig) -> FusionResult:
    """Partition the compute nodes of ``graph`` into fusion groups."""
    consumers = graph.consumers()
    assigned: set[int] = set()
    groups: list[tuple[int, ...]] = []

    def sole_consumer(node: Node) -> Node | None:
        """The unique consumer of a single-output node, else None."""
        if len(node.outputs) != 1:
            return None
        users = consumers.get((node.node_id, 0), [])
        if len(users) != 1:
            return None
        if any(v.node_id == node.node_id for v in graph.outputs):
            return None
        return graph.nodes[users[0]]

    def chain_from(start: Node, budget: int, in_epilogue: bool) -> list[int]:
        """Greedy single-consumer chain of fusible ops starting at ``start``."""
        chain: list[int] = []
        current: Node | None = start
        while (
            current is not None
            and len(chain) < budget
            and current.node_id not in assigned
            and not current.op.is_metadata_only
            and config.fusible(current.op.category, in_epilogue, current.op.kind)
        ):
            chain.append(current.node_id)
            assigned.add(current.node_id)
            current = sole_consumer(current)
        return chain

    for node in graph.compute_nodes():
        if node.node_id in assigned:
            continue
        if config.gemm_epilogue and node.op.category is OpCategory.GEMM:
            assigned.add(node.node_id)
            group = [node.node_id]
            nxt = sole_consumer(node)
            if nxt is not None:
                group.extend(chain_from(nxt, config.max_epilogue, in_epilogue=True))
            groups.append(tuple(group))
            continue
        if config.pointwise_chains and config.fusible(node.op.category) and not node.op.is_metadata_only:
            group = chain_from(node, config.max_chain, in_epilogue=False)
            if group:
                groups.append(tuple(group))
                continue
        assigned.add(node.node_id)
        groups.append((node.node_id,))

    return FusionResult(groups=groups)


def group_category(graph: Graph, node_ids: tuple[int, ...]) -> OpCategory:
    """Reporting category of a fused kernel.

    Any GEMM member makes the whole kernel GEMM (fused epilogues disappear
    into the GEMM's latency, as the paper observes for CONV+BN+ReLU).
    Otherwise the member with the largest unfused traffic wins.
    """
    best: tuple[int, OpCategory] | None = None
    node_costs = graph.node_costs()
    for node_id in node_ids:
        node = graph.nodes[node_id]
        if node.op.category is OpCategory.GEMM:
            return OpCategory.GEMM
        cost = node_costs[node_id]
        key = cost.total_bytes
        if best is None or key > best[0]:
            best = (key, node.op.category)
    assert best is not None
    return best[1]
