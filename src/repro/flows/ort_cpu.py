"""ONNX Runtime flow with an aggressive inductor-style fuser.

A what-if scenario assembled **purely from existing passes**: the serving
stack keeps ORT's per-op CPU-provider fallback (the paper's Fig. 7 failure
mode) but swaps the conservative ORT graph rewriter for TorchInductor-style
pointwise/normalization chain fusion (longer chains, fused reductions).  It
answers the question the pass pipeline exists to make cheap: *how much of
the fallback penalty survives when fusion gets better but the provider
coverage does not?*

No new lowering code — the pipeline reuses :class:`FusionPass` with the
inductor fusion knobs, :class:`PerOpFallbackPlacement` with ORT's
unsupported-kind list, and the standard refinement passes.  Mixed-device
fusion groups (possible when a fallback kind is also a fusible category) are
split rather than aborting lowering: accelerator members stay fused, CPU
members become singleton fallback kernels with full PCIe accounting.
"""

from __future__ import annotations

from repro.flows.base import DeploymentFlow
from repro.flows.onnxruntime import ONNXRuntimeFlow
from repro.flows.torch_inductor import TorchInductorFlow
from repro.flows.passes import (
    FusionPass,
    KernelConstructionPass,
    MetadataElisionPass,
    PassManager,
    PerOpFallbackPlacement,
    PlacementPass,
    PlacementPolicy,
    SyncInsertionPass,
    TransferInsertionPass,
)


class ORTCpuEpFlow(DeploymentFlow):
    name = "ort-cpu-ep"
    dispatch_profile = "ort"
    #: TorchInductor's chain fuser, verbatim — not ORT's shorter chains.
    fusion = TorchInductorFlow.fusion
    collapses_composites = True
    gemm_saturation_scale = 0.6
    uniform_placement = False  # same per-op fallback as ONNXRuntimeFlow

    def placement_policy(self) -> PlacementPolicy:
        return PerOpFallbackPlacement(ONNXRuntimeFlow.gpu_unsupported_kinds)

    def build_pipeline(self) -> PassManager:
        return PassManager(
            (
                FusionPass(self.fusion),
                PlacementPass(self.placement_policy(), split_mixed_groups=True),
                KernelConstructionPass(collapse=True),
                TransferInsertionPass(),
                SyncInsertionPass(),
                MetadataElisionPass(),
            )
        )
