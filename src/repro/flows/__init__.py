"""Deployment flows: lowering operator graphs into executable plans."""

from repro.errors import RegistryError
from repro.flows.base import DeploymentFlow
from repro.flows.fusion import (
    FusionConfig,
    FusionResult,
    fuse_graph,
    group_category,
)
from repro.flows.onnxruntime import ONNXRuntimeFlow
from repro.flows.plan import ExecutionPlan, PlannedKernel, group_cost, node_base_cost
from repro.flows.pytorch_eager import PyTorchEagerFlow
from repro.flows.tensorrt import TensorRTFlow
from repro.flows.torch_inductor import TorchInductorFlow

_FLOWS = {
    PyTorchEagerFlow.name: PyTorchEagerFlow,
    TorchInductorFlow.name: TorchInductorFlow,
    TensorRTFlow.name: TensorRTFlow,
    ONNXRuntimeFlow.name: ONNXRuntimeFlow,
}


def get_flow(name: str) -> DeploymentFlow:
    """Instantiate a deployment flow by name.

    Accepted names: ``pytorch``, ``torchinductor``, ``tensorrt``,
    ``onnxruntime`` (aliases: ``pt``, ``inductor``, ``trt``, ``ort``).
    """
    aliases = {
        "pt": "pytorch",
        "eager": "pytorch",
        "inductor": "torchinductor",
        "trt": "tensorrt",
        "ort": "onnxruntime",
    }
    key = aliases.get(name.lower(), name.lower())
    try:
        return _FLOWS[key]()
    except KeyError:
        raise RegistryError(f"unknown flow {name!r}; known: {sorted(_FLOWS)}") from None


__all__ = [
    "DeploymentFlow",
    "ExecutionPlan",
    "FusionConfig",
    "FusionResult",
    "ONNXRuntimeFlow",
    "PlannedKernel",
    "PyTorchEagerFlow",
    "TensorRTFlow",
    "TorchInductorFlow",
    "fuse_graph",
    "get_flow",
    "group_category",
    "group_cost",
    "node_base_cost",
]
