"""Deployment flows: lowering operator graphs into executable plans."""

from repro.errors import RegistryError
from repro.flows.base import DeploymentFlow
from repro.flows.fusion import (
    FusionConfig,
    FusionResult,
    fuse_graph,
    group_category,
)
from repro.flows.npu_offload import NPUOffloadFlow
from repro.flows.onnxruntime import ONNXRuntimeFlow
from repro.flows.ort_cpu import ORTCpuEpFlow
from repro.flows.passes import (
    CategoryRoutePlacement,
    CompositeExpansionPass,
    FusionPass,
    KernelConstructionPass,
    LoweringPass,
    LoweringState,
    MetadataElisionPass,
    PassManager,
    PerOpFallbackPlacement,
    PlacementPass,
    PlacementPolicy,
    SyncInsertionPass,
    TransferInsertionPass,
    UniformPlacement,
)
from repro.flows.plan import ExecutionPlan, PlannedKernel, group_cost, node_base_cost
from repro.flows.pytorch_eager import PyTorchEagerFlow
from repro.flows.reference import reference_lower
from repro.flows.tensorrt import TensorRTFlow
from repro.flows.torch_inductor import TorchInductorFlow

_FLOWS: dict[str, type[DeploymentFlow]] = {}

#: short names accepted by :func:`get_flow` alongside canonical flow names.
_ALIASES = {
    "pt": "pytorch",
    "eager": "pytorch",
    "inductor": "torchinductor",
    "trt": "tensorrt",
    "ort": "onnxruntime",
    "ortcpu": "ort-cpu-ep",
    "npu": "npu-offload",
}


#: memoized flow instances: flows are stateless besides their lazily-built
#: (and content-addressed) pipeline, so the registry hands out one shared
#: instance per name instead of rebuilding pipeline + signature per sweep
#: point.  Invalidated when a registration is replaced.
_INSTANCES: dict[str, DeploymentFlow] = {}


def register_flow(flow_cls: type[DeploymentFlow], replace: bool = False) -> type[DeploymentFlow]:
    """Register a deployment flow class under its ``name`` for :func:`get_flow`.

    Usable as a decorator on custom flows (see
    ``examples/custom_flow_passes.py``); registered flows are immediately
    available to the sweep CLI's ``--flows`` axis and every harness.
    """
    key = flow_cls.name.lower()
    if key in _ALIASES:
        raise RegistryError(
            f"flow name {flow_cls.name!r} collides with the built-in alias"
            f" for {_ALIASES[key]!r}"
        )
    if key in _FLOWS and not replace:
        raise RegistryError(f"flow {flow_cls.name!r} already registered")
    _FLOWS[key] = flow_cls
    _INSTANCES.pop(key, None)
    return flow_cls


for _cls in (
    PyTorchEagerFlow,
    TorchInductorFlow,
    TensorRTFlow,
    ONNXRuntimeFlow,
    ORTCpuEpFlow,
    NPUOffloadFlow,
):
    register_flow(_cls)


def get_flow(name: str) -> DeploymentFlow:
    """Instantiate a deployment flow by name.

    Accepted names: ``pytorch``, ``torchinductor``, ``tensorrt``,
    ``onnxruntime``, ``ort-cpu-ep``, plus anything passed to
    :func:`register_flow` (aliases: ``pt``, ``inductor``, ``trt``, ``ort``,
    ``ortcpu``).
    """
    key = _ALIASES.get(name.lower(), name.lower())
    instance = _INSTANCES.get(key)
    if instance is None:
        try:
            instance = _FLOWS[key]()
        except KeyError:
            raise RegistryError(
                f"unknown flow {name!r}; known: {sorted(_FLOWS)}"
            ) from None
        _INSTANCES[key] = instance
    return instance


def list_flows() -> list[str]:
    """Canonical names of all registered flows."""
    return sorted(_FLOWS)


__all__ = [
    "CategoryRoutePlacement",
    "CompositeExpansionPass",
    "DeploymentFlow",
    "ExecutionPlan",
    "FusionConfig",
    "FusionPass",
    "FusionResult",
    "KernelConstructionPass",
    "LoweringPass",
    "LoweringState",
    "MetadataElisionPass",
    "NPUOffloadFlow",
    "ONNXRuntimeFlow",
    "ORTCpuEpFlow",
    "PassManager",
    "PerOpFallbackPlacement",
    "PlacementPass",
    "PlacementPolicy",
    "PlannedKernel",
    "PyTorchEagerFlow",
    "SyncInsertionPass",
    "TensorRTFlow",
    "TorchInductorFlow",
    "TransferInsertionPass",
    "UniformPlacement",
    "fuse_graph",
    "get_flow",
    "group_category",
    "group_cost",
    "list_flows",
    "node_base_cost",
    "reference_lower",
    "register_flow",
]
