"""FusionPass: partition the graph's compute nodes into fusion groups."""

from __future__ import annotations

from repro.flows.fusion import FusionConfig, fuse_graph
from repro.flows.passes.manager import LoweringPass
from repro.flows.passes.state import LoweringState


class FusionPass(LoweringPass):
    """Run the pattern-based fuser and record its disjoint node groups.

    Always the first pass of a pipeline: everything downstream consumes the
    ``groups`` partition it produces.
    """

    name = "fusion"

    def __init__(self, config: FusionConfig | None = None):
        self.config = config or FusionConfig()

    def describe(self) -> str:
        # FusionConfig is a frozen dataclass; its repr is a stable, complete
        # rendering of every fusion knob.
        return repr(self.config)

    def run(self, state: LoweringState) -> None:
        state.groups = fuse_graph(state.graph, self.config).groups
        if state.record_provenance:
            fused = sum(1 for g in state.groups if len(g) > 1)
            state.note(
                self.name,
                groups=len(state.groups),
                fused_groups=fused,
                fused_ops=sum(len(g) for g in state.groups if len(g) > 1),
            )
