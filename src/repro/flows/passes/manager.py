"""The pass manager: an ordered, content-addressable lowering pipeline.

A :class:`PassManager` owns a tuple of :class:`LoweringPass` instances and
runs them in order over one :class:`~repro.flows.passes.state.LoweringState`.
Each pass declares a stable :meth:`~LoweringPass.signature` covering its name
and configuration; the manager folds those, in order, into a content hash
that :meth:`repro.flows.base.DeploymentFlow.pipeline_signature` exposes and
the sweep :class:`~repro.sweep.cache.PlanCache` keys plans on — so renaming
a flow class or refactoring pass internals never invalidates cached plans,
while changing any knob that could alter a plan always does.

Ordering contract (see README "The pass pipeline"):

1. exactly one grouping pass (FusionPass) runs first and sets ``groups``;
2. exactly one placement pass follows and sets ``devices`` (it may also
   rewrite ``groups``, e.g. splitting device-spanning fusion groups);
3. exactly one construction pass turns groups+devices into ``drafts``;
4. any number of refinement passes then mutate drafts in place
   (composite expansion, transfers, syncs, metadata elision, custom passes).
"""

from __future__ import annotations

import abc
import hashlib
from typing import TYPE_CHECKING, ClassVar, Iterable

from repro.flows.passes.state import LoweringState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.device import DeviceKind
    from repro.ir.graph import Graph


class LoweringPass(abc.ABC):
    """One named, individually-testable stage of plan lowering."""

    name: ClassVar[str]

    @abc.abstractmethod
    def run(self, state: LoweringState) -> None:
        """Advance ``state``; passes mutate it in place."""

    def describe(self) -> str:
        """Stable description of this pass's configuration (hash input)."""
        return ""

    def signature(self) -> str:
        """Content identity of the pass: name plus configuration."""
        return f"{self.name}({self.describe()})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.signature()}>"


class PassManager:
    """Runs an ordered list of lowering passes over a fresh state."""

    def __init__(self, passes: Iterable[LoweringPass]):
        self.passes: tuple[LoweringPass, ...] = tuple(passes)
        if not self.passes:
            raise ValueError("a lowering pipeline needs at least one pass")
        self._signature: str | None = None

    def run(
        self,
        graph: "Graph",
        use_gpu: "bool | str | DeviceKind",
        record_provenance: bool = False,
    ) -> LoweringState:
        """Run the pipeline for one lowering target.

        ``use_gpu`` keeps its historical name and booleans (True -> GPU,
        False -> CPU) but now accepts any :class:`DeviceKind` or device-mode
        string, normalized via :func:`~repro.hardware.device.as_device_kind`.
        """
        from repro.hardware.device import as_device_kind

        state = LoweringState(
            graph=graph,
            target=as_device_kind(use_gpu),
            record_provenance=record_provenance,
        )
        for lowering_pass in self.passes:
            lowering_pass.run(state)
        return state

    def pass_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.passes)

    def signature(self) -> str:
        """Order-sensitive content hash of the pipeline's pass configurations."""
        if self._signature is None:
            digest = hashlib.blake2b(digest_size=16)
            for lowering_pass in self.passes:
                digest.update(b"\x00")
                digest.update(lowering_pass.signature().encode())
            self._signature = digest.hexdigest()
        return self._signature

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PassManager({' -> '.join(self.pass_names())})"
