"""PlacementPass: assign every fusion group to a device.

Placement is a *policy* plugged into one pass:

* :class:`UniformPlacement` — all flows except ORT: the whole plan lands on
  one device, resolved once per lowering (never per node — re-deriving the
  device for every member of every fused group was redundant work on the hot
  lowering path of the pre-pass planner).
* :class:`PerOpFallbackPlacement` — ORT-style: ops whose kind the accelerator
  provider lacks fall back to the CPU provider.  Groups whose members
  disagree either abort lowering (the historical contract) or, with
  ``split_mixed_groups``, are split: accelerator members stay fused in
  contiguous runs, while CPU members become singleton kernels (the host
  provider runs fallback ops one by one, and each must pay its PCIe
  transfers) — so aggressive fusion configs can coexist with per-op fallback.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.errors import PlanError
from repro.hardware.device import DeviceKind
from repro.flows.passes.manager import LoweringPass
from repro.flows.passes.state import LoweringState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ir.node import Node


class PlacementPolicy(abc.ABC):
    """Where nodes run for a given device mode."""

    #: True when the policy maps every node to one device per device mode;
    #: decides the pipeline's shape (uniform pipelines skip transfer passes).
    is_uniform: bool = False

    @abc.abstractmethod
    def device_for(self, node: "Node", use_gpu: bool) -> DeviceKind:
        """Device for one node."""

    def resolve_uniform(self, use_gpu: bool) -> DeviceKind | None:
        """The single device every node maps to, or None for per-op policies."""
        return None

    @abc.abstractmethod
    def signature(self) -> str:
        """Stable content description of the policy's configuration."""


class UniformPlacement(PlacementPolicy):
    """Every node on the same device; resolved once per lowering."""

    is_uniform = True

    def device_for(self, node: "Node", use_gpu: bool) -> DeviceKind:
        return DeviceKind.GPU if use_gpu else DeviceKind.CPU

    def resolve_uniform(self, use_gpu: bool) -> DeviceKind | None:
        return DeviceKind.GPU if use_gpu else DeviceKind.CPU

    def signature(self) -> str:
        return "uniform"


class PerOpFallbackPlacement(PlacementPolicy):
    """Ops the accelerator provider lacks kernels for fall back to the CPU."""

    def __init__(self, cpu_fallback_kinds: frozenset[str]):
        self.cpu_fallback_kinds = frozenset(cpu_fallback_kinds)

    def device_for(self, node: "Node", use_gpu: bool) -> DeviceKind:
        if not use_gpu:
            return DeviceKind.CPU
        if node.op.kind in self.cpu_fallback_kinds:
            return DeviceKind.CPU
        return DeviceKind.GPU

    def signature(self) -> str:
        return f"per-op-fallback({','.join(sorted(self.cpu_fallback_kinds))})"


class PlacementPass(LoweringPass):
    """Resolve a device per group under the flow's placement policy."""

    name = "placement"

    def __init__(self, policy: PlacementPolicy, split_mixed_groups: bool = False):
        self.policy = policy
        self.split_mixed_groups = split_mixed_groups

    def describe(self) -> str:
        return f"{self.policy.signature()},split={int(self.split_mixed_groups)}"

    def run(self, state: LoweringState) -> None:
        assert state.groups is not None, "placement requires fusion groups"
        uniform = self.policy.resolve_uniform(state.use_gpu)
        if uniform is not None:
            # uniform flows resolve the device once, not per node or group
            state.devices = [uniform] * len(state.groups)
            state.note(self.name, device=uniform.value, groups=len(state.groups))
            return
        nodes = state.graph.nodes
        use_gpu = state.use_gpu
        groups: list[tuple[int, ...]] = []
        devices: list[DeviceKind] = []
        splits = 0
        for group in state.groups:
            if len(group) == 1:
                groups.append(group)
                devices.append(self.policy.device_for(nodes[group[0]], use_gpu))
                continue
            member_devices = [self.policy.device_for(nodes[i], use_gpu) for i in group]
            distinct = set(member_devices)
            if len(distinct) == 1:
                groups.append(group)
                devices.append(member_devices[0])
                continue
            if not self.split_mixed_groups:
                raise PlanError(f"fused group {group} spans devices {distinct}")
            splits += 1
            for run_ids, run_device in _split_runs(group, member_devices):
                if run_device is DeviceKind.CPU:
                    # the host provider runs fallback ops one by one, not as a
                    # fused generated kernel: emit singletons so each gets the
                    # standard fallback transfer accounting downstream.
                    for node_id in run_ids:
                        groups.append((node_id,))
                        devices.append(run_device)
                else:
                    groups.append(run_ids)
                    devices.append(run_device)
        state.groups = groups
        state.devices = devices
        if state.record_provenance:
            cpu_placed = sum(1 for d in devices if d is DeviceKind.CPU) if use_gpu else 0
            state.note(
                self.name,
                groups=len(groups),
                cpu_placed_kernels=cpu_placed,
                split_groups=splits,
            )


def _split_runs(
    group: tuple[int, ...], member_devices: list[DeviceKind]
) -> list[tuple[tuple[int, ...], DeviceKind]]:
    """Split a device-spanning group into contiguous same-device runs."""
    runs: list[tuple[tuple[int, ...], DeviceKind]] = []
    start = 0
    for i in range(1, len(group) + 1):
        if i == len(group) or member_devices[i] is not member_devices[start]:
            runs.append((group[start:i], member_devices[start]))
            start = i
    return runs
