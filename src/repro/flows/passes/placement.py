"""PlacementPass: assign every fusion group to a device.

Placement is a *policy* plugged into one pass; policies speak the N-device
model: they map ``(node, target)`` to a :class:`DeviceKind`, where ``target``
is the device class the lowering aims at (historical booleans still work —
``True`` is GPU, ``False`` is CPU).

* :class:`UniformPlacement` — all flows except the per-op ones: the whole
  plan lands on the target device, resolved once per lowering (never per
  node — re-deriving the device for every member of every fused group was
  redundant work on the hot lowering path of the pre-pass planner).
* :class:`PerOpFallbackPlacement` — ORT-style: ops whose kind the accelerator
  provider lacks fall back to the host CPU provider.  Groups whose members
  disagree either abort lowering (the historical contract) or, with
  ``split_mixed_groups``, are split: accelerator members stay fused in
  contiguous runs, while CPU members become singleton kernels (the host
  provider runs fallback ops one by one, and each must pay its interconnect
  transfers) — so aggressive fusion configs can coexist with per-op fallback.
* :class:`CategoryRoutePlacement` — NPU-offload-style: node categories in the
  accelerated set go to the target device, everything else stays on the
  host.  This is how matrix engines with no general op coverage (edge NPUs)
  are modelled: GEMM-family work offloads, non-GEMM work cannot.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Iterable

from repro.errors import PlanError
from repro.hardware.device import DeviceKind, as_device_kind
from repro.flows.passes.manager import LoweringPass
from repro.flows.passes.state import LoweringState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ir.node import Node
    from repro.ops.base import OpCategory


class PlacementPolicy(abc.ABC):
    """Where nodes run for a given lowering target."""

    #: True when the policy maps every node to one device per target;
    #: decides the pipeline's shape (uniform pipelines skip transfer passes).
    is_uniform: bool = False

    @abc.abstractmethod
    def device_for(self, node: "Node", target: "bool | DeviceKind") -> DeviceKind:
        """Device for one node (``target`` accepts legacy ``use_gpu`` booleans)."""

    def resolve_uniform(self, target: "bool | DeviceKind") -> DeviceKind | None:
        """The single device every node maps to, or None for per-op policies."""
        return None

    @abc.abstractmethod
    def signature(self) -> str:
        """Stable content description of the policy's configuration."""


class UniformPlacement(PlacementPolicy):
    """Every node on the target device; resolved once per lowering."""

    is_uniform = True

    def device_for(self, node: "Node", target: "bool | DeviceKind") -> DeviceKind:
        return as_device_kind(target)

    def resolve_uniform(self, target: "bool | DeviceKind") -> DeviceKind | None:
        return as_device_kind(target)

    def signature(self) -> str:
        return "uniform"


class PerOpFallbackPlacement(PlacementPolicy):
    """Ops the accelerator provider lacks kernels for fall back to the CPU."""

    def __init__(self, cpu_fallback_kinds: frozenset[str]):
        self.cpu_fallback_kinds = frozenset(cpu_fallback_kinds)

    def device_for(self, node: "Node", target: "bool | DeviceKind") -> DeviceKind:
        resolved = as_device_kind(target)
        if resolved is DeviceKind.CPU:
            return DeviceKind.CPU
        if node.op.kind in self.cpu_fallback_kinds:
            return DeviceKind.CPU
        return resolved

    def signature(self) -> str:
        return f"per-op-fallback({','.join(sorted(self.cpu_fallback_kinds))})"


class CategoryRoutePlacement(PlacementPolicy):
    """Route accelerated op categories to the target, the rest to the host.

    The inverse of :class:`PerOpFallbackPlacement`: instead of enumerating
    what the accelerator *lacks*, enumerate the categories it *has* — the
    natural description of matrix engines (edge NPUs) whose coverage is a
    short allowlist rather than a short denylist.
    """

    def __init__(self, accelerated_categories: "Iterable[OpCategory]"):
        self.accelerated_categories = frozenset(accelerated_categories)

    def device_for(self, node: "Node", target: "bool | DeviceKind") -> DeviceKind:
        resolved = as_device_kind(target)
        if resolved is DeviceKind.CPU:
            return DeviceKind.CPU
        if node.op.category in self.accelerated_categories:
            return resolved
        return DeviceKind.CPU

    def signature(self) -> str:
        names = ",".join(sorted(c.name for c in self.accelerated_categories))
        return f"category-route({names})"


class PlacementPass(LoweringPass):
    """Resolve a device per group under the flow's placement policy."""

    name = "placement"

    def __init__(self, policy: PlacementPolicy, split_mixed_groups: bool = False):
        self.policy = policy
        self.split_mixed_groups = split_mixed_groups

    def describe(self) -> str:
        return f"{self.policy.signature()},split={int(self.split_mixed_groups)}"

    def run(self, state: LoweringState) -> None:
        assert state.groups is not None, "placement requires fusion groups"
        target = state.target
        uniform = self.policy.resolve_uniform(target)
        if uniform is not None:
            # uniform flows resolve the device once, not per node or group
            state.devices = [uniform] * len(state.groups)
            state.note(self.name, device=uniform.value, groups=len(state.groups))
            return
        nodes = state.graph.nodes
        groups: list[tuple[int, ...]] = []
        devices: list[DeviceKind] = []
        splits = 0
        for group in state.groups:
            if len(group) == 1:
                groups.append(group)
                devices.append(self.policy.device_for(nodes[group[0]], target))
                continue
            member_devices = [self.policy.device_for(nodes[i], target) for i in group]
            distinct = set(member_devices)
            if len(distinct) == 1:
                groups.append(group)
                devices.append(member_devices[0])
                continue
            if not self.split_mixed_groups:
                raise PlanError(f"fused group {group} spans devices {distinct}")
            splits += 1
            for run_ids, run_device in _split_runs(group, member_devices):
                if run_device is not target:
                    # the host provider runs off-target ops one by one, not as
                    # a fused generated kernel: emit singletons so each gets
                    # the standard fallback transfer accounting downstream.
                    for node_id in run_ids:
                        groups.append((node_id,))
                        devices.append(run_device)
                else:
                    groups.append(run_ids)
                    devices.append(run_device)
        state.groups = groups
        state.devices = devices
        if state.record_provenance:
            off_target = (
                sum(1 for d in devices if d is not target)
                if target is not DeviceKind.CPU
                else 0
            )
            state.note(
                self.name,
                groups=len(groups),
                cpu_placed_kernels=off_target,
                split_groups=splits,
            )


def _split_runs(
    group: tuple[int, ...], member_devices: list[DeviceKind]
) -> list[tuple[tuple[int, ...], DeviceKind]]:
    """Split a device-spanning group into contiguous same-device runs."""
    runs: list[tuple[tuple[int, ...], DeviceKind]] = []
    start = 0
    for i in range(1, len(group) + 1):
        if i == len(group) or member_devices[i] is not member_devices[start]:
            runs.append((group[start:i], member_devices[start]))
            start = i
    return runs
