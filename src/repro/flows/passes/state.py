"""Lowering state shared by the pass pipeline.

A :class:`LoweringState` is the only thing passes read and write: the source
graph, the target device mode, and three progressively-refined artifacts —
fusion ``groups``, per-group ``devices``, and mutable :class:`KernelDraft`
records that the flow finally freezes into immutable
:class:`~repro.flows.plan.PlannedKernel` tuples.

Drafts are deliberately tiny mutable objects (``__slots__``, no dataclass
machinery): tens of thousands are minted per sweep, so their construction
cost sits on the engine's cold path next to ``PlannedKernel`` itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hardware.device import DeviceKind
    from repro.ir.graph import Graph
    from repro.ir.node import Node
    from repro.ops.base import OpCategory, OpCost
    from repro.ir.dtype import DType


class KernelDraft:
    """A mutable kernel under construction; finalized into a PlannedKernel."""

    __slots__ = (
        "name",
        "node_ids",
        "op_kinds",
        "category",
        "device",
        "cost",
        "dtype",
        "metadata_only",
        "is_custom",
        "launch_count",
        "transfer_bytes_in",
        "transfer_bytes_out",
        "fallback",
        "provenance",
    )

    def __init__(
        self,
        name: str,
        node_ids: "tuple[int, ...]",
        op_kinds: "tuple[str, ...]",
        category: "OpCategory",
        device: "DeviceKind",
        cost: "OpCost",
        dtype: "DType",
        is_custom: bool = False,
        fallback: bool = False,
    ):
        self.name = name
        self.node_ids = node_ids
        self.op_kinds = op_kinds
        self.category = category
        self.device = device
        self.cost = cost
        self.dtype = dtype
        self.metadata_only = False
        self.is_custom = is_custom
        self.launch_count = 1
        self.transfer_bytes_in = 0
        self.transfer_bytes_out = 0
        #: True when a per-op placement policy forced this kernel off the
        #: accelerator: refinement passes skip fallback drafts the way the
        #: pre-pass planner's early return did.
        self.fallback = fallback
        #: per-pass annotations, recorded only when provenance is requested.
        self.provenance: list[str] | None = None

    @property
    def fused(self) -> bool:
        return len(self.node_ids) > 1

    def single_node(self, graph: "Graph") -> "Node | None":
        """The draft's node when it wraps exactly one, else None."""
        if len(self.node_ids) != 1:
            return None
        return graph.nodes[self.node_ids[0]]

    def tag(self, label: str) -> None:
        """Record a provenance annotation (inspect/debug paths only)."""
        if self.provenance is None:
            self.provenance = [label]
        else:
            self.provenance.append(label)


@dataclass(frozen=True)
class PassTrace:
    """What one pass did to the state, for ``nongemm-bench inspect``."""

    pass_name: str
    summary: dict[str, object]


@dataclass
class LoweringState:
    """Everything a lowering pipeline accumulates for one (graph, target) pair."""

    graph: "Graph"
    #: the device class this lowering targets (CPU means host-only); replaces
    #: the historical ``use_gpu`` boolean, which remains as a derived view.
    target: "DeviceKind"
    #: disjoint node-id groups in topological order (set by FusionPass).
    groups: list[tuple[int, ...]] | None = None
    #: device per group, aligned with ``groups`` (set by PlacementPass).
    devices: "list[DeviceKind] | None" = None
    #: kernels under construction (set by KernelConstructionPass).
    drafts: list[KernelDraft] | None = None
    #: when True, passes record PassTrace entries and draft provenance tags.
    record_provenance: bool = False
    trace: list[PassTrace] = field(default_factory=list)

    @property
    def use_gpu(self) -> bool:
        """Legacy view of the target: True for any accelerator target."""
        from repro.hardware.device import DeviceKind

        return self.target is not DeviceKind.CPU

    def note(self, pass_name: str, **summary: object) -> None:
        """Append a trace entry (no-op unless provenance recording is on)."""
        if self.record_provenance:
            self.trace.append(PassTrace(pass_name, dict(summary)))
