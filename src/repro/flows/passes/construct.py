"""KernelConstructionPass: turn placed fusion groups into kernel drafts.

This is the single home of kernel construction: full lowerings and plan
re-targeting (:class:`~repro.flows.passes.retarget.RetargetPass`) both
produce :class:`~repro.flows.passes.state.KernelDraft` records that the flow
freezes into :class:`~repro.flows.plan.PlannedKernel` tuples, so there is
exactly one place that knows how a kernel's name, cost, dtype, and flags are
derived from graph structure.
"""

from __future__ import annotations

from repro.hardware.device import DeviceKind
from repro.ir.dtype import DType
from repro.ir.node import Node
from repro.flows.fusion import group_category
from repro.flows.passes.manager import LoweringPass
from repro.flows.passes.state import KernelDraft, LoweringState
from repro.flows.plan import group_costs_batch


class KernelConstructionPass(LoweringPass):
    """Build one draft per placed group: base cost, dtype, name, flags.

    ``collapse`` mirrors ``DeploymentFlow.collapses_composites``: compiled
    flows swallow composite Python ops into one generated kernel, which also
    strips the hand-written-custom-kernel flag from collapsed singles.
    CPU-fallback drafts keep the raw flag — a fallback op runs the framework's
    own (possibly custom) CPU kernel, not a generated one.
    """

    name = "construct"

    def __init__(self, collapse: bool = True):
        self.collapse = collapse

    def describe(self) -> str:
        return f"collapse={int(self.collapse)}"

    def run(self, state: LoweringState) -> None:
        assert state.groups is not None and state.devices is not None, (
            "construction requires fusion groups and placements"
        )
        graph = state.graph
        nodes = graph.nodes
        node_costs = graph.node_costs()
        collapse = self.collapse
        target = state.target
        accelerated = target is not DeviceKind.CPU
        record = state.record_provenance
        # fused groups need boundary-aware costs; evaluate them all in one
        # batched graph walk instead of a per-group membership analysis.
        fused_groups = [group for group in state.groups if len(group) > 1]
        fused_costs = iter(group_costs_batch(graph, fused_groups))
        drafts: list[KernelDraft] = []
        for group, device in zip(state.groups, state.devices):
            if len(group) == 1:
                node = nodes[group[0]]
                op = node.op
                # a kernel forced off the lowering target is a fallback: it
                # pays interconnect transfers and skips refinement rewrites.
                fallback = accelerated and device is not target
                draft = KernelDraft(
                    name=node.qualified_name,
                    node_ids=group,
                    op_kinds=(op.kind,),
                    category=op.category,
                    device=device,
                    cost=node_costs[group[0]],
                    dtype=node_dtype(node),
                    is_custom=op.is_custom_kernel if fallback else (
                        op.is_custom_kernel and not collapse
                    ),
                    fallback=fallback,
                )
            else:
                first = nodes[group[0]]
                draft = KernelDraft(
                    name=f"{first.qualified_name}+{len(group) - 1}",
                    node_ids=group,
                    op_kinds=tuple(nodes[i].op.kind for i in group),
                    category=group_category(graph, group),
                    device=device,
                    cost=next(fused_costs),
                    dtype=node_dtype(first),
                    # fused kernels are generated, not hand-written
                    is_custom=False,
                )
                if record:
                    draft.tag(f"fused[{len(group)}]")
            drafts.append(draft)
        state.drafts = drafts
        state.note(self.name, kernels=len(drafts))


def node_dtype(node: Node) -> DType:
    """Execution precision of a node: its first tensor input, else its output."""
    if node.inputs:
        return node.inputs[0].spec.dtype
    return node.outputs[0].dtype
