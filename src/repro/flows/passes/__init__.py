"""Composable, cache-keyed lowering passes.

Deployment flows are assembled from the passes in this package instead of a
monolithic planner: a :class:`PassManager` runs an ordered list of named
passes over one :class:`LoweringState`, and the flow freezes the resulting
kernel drafts into an :class:`~repro.flows.plan.ExecutionPlan`.

Ordering contract — grouping, then placement, then construction, then any
number of refinements (see :mod:`repro.flows.passes.manager` and the README
architecture section).  Every pass exposes a stable
:meth:`~repro.flows.passes.manager.LoweringPass.signature`, and the pipeline
folds them into the content hash that
:meth:`~repro.flows.base.DeploymentFlow.pipeline_signature` exposes for plan
caching.
"""

from repro.flows.passes.construct import KernelConstructionPass, node_dtype
from repro.flows.passes.fusion_pass import FusionPass
from repro.flows.passes.manager import LoweringPass, PassManager
from repro.flows.passes.placement import (
    CategoryRoutePlacement,
    PerOpFallbackPlacement,
    PlacementPass,
    PlacementPolicy,
    UniformPlacement,
)
from repro.flows.passes.refine import (
    CompositeExpansionPass,
    MetadataElisionPass,
    SyncInsertionPass,
    TransferInsertionPass,
)
from repro.flows.passes.retarget import RetargetPass
from repro.flows.passes.state import KernelDraft, LoweringState, PassTrace

__all__ = [
    "CategoryRoutePlacement",
    "CompositeExpansionPass",
    "FusionPass",
    "KernelConstructionPass",
    "KernelDraft",
    "LoweringPass",
    "LoweringState",
    "MetadataElisionPass",
    "PassManager",
    "PassTrace",
    "PerOpFallbackPlacement",
    "PlacementPass",
    "PlacementPolicy",
    "RetargetPass",
    "SyncInsertionPass",
    "TransferInsertionPass",
    "UniformPlacement",
    "node_dtype",
]
