"""RetargetPass: seed drafts from an existing plan instead of re-lowering.

``DeploymentFlow.derive_plan`` runs a short pipeline — retarget, sync
insertion, metadata elision — over the kernels of an already-lowered plan.
For uniform-placement flows the kernel partition, fused costs, dtypes, and
launch counts are all device-independent, so re-targeting reuses them
verbatim and only the device-sensitive refinements re-run.  This replaces
the pre-pass planner's hand-copied ``PlannedKernel`` duplication with the
same draft-and-refine machinery every full lowering uses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.flows.passes.manager import LoweringPass
from repro.flows.passes.state import KernelDraft, LoweringState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flows.plan import ExecutionPlan


class RetargetPass(LoweringPass):
    """Copy a source plan's kernels onto the other device class as drafts.

    Device-dependent fields (placement, sync transfers, metadata elision) are
    reset here and re-derived by the refinement passes that follow.
    """

    name = "retarget"

    def __init__(self, source: "ExecutionPlan"):
        self.source = source

    def describe(self) -> str:
        return self.source.flow

    def run(self, state: LoweringState) -> None:
        device = state.target
        drafts: list[KernelDraft] = []
        for kernel in self.source.kernels:
            draft = KernelDraft(
                name=kernel.name,
                node_ids=kernel.node_ids,
                op_kinds=kernel.op_kinds,
                category=kernel.category,
                device=device,
                cost=kernel.cost,
                dtype=kernel.dtype,
                is_custom=kernel.is_custom,
            )
            draft.launch_count = kernel.launch_count
            drafts.append(draft)
        state.drafts = drafts
        state.note(self.name, kernels=len(drafts), source_flow=self.source.flow)
