"""Refinement passes: in-place draft rewrites after kernel construction.

Each pass owns one deployment-flow behavior that the pre-pass planner had
inlined into ``_plan_single``:

* :class:`CompositeExpansionPass` — eager kernel splitting: composite Python
  ops launch one kernel per tensor expression and re-stream their operands.
* :class:`TransferInsertionPass` — CPU-fallback PCIe accounting: an op forced
  off the accelerator materializes its operands on the host and back.
* :class:`SyncInsertionPass` — data-dependent ops stall the pipeline with a
  device-to-host round trip to read their result size.
* :class:`MetadataElisionPass` — shape-only ops cost nothing at runtime
  unless something (a sync, a fallback) forces their data to materialize.

All four skip fused drafts and fallback drafts where the pre-pass planner's
early returns did, so pipelines composed of any subset stay kernel-for-kernel
identical to it.
"""

from __future__ import annotations

from repro.hardware.device import DeviceKind
from repro.ops.base import OpCost
from repro.flows.passes.manager import LoweringPass
from repro.flows.passes.state import LoweringState


class CompositeExpansionPass(LoweringPass):
    """Split composite Python ops into their eager kernel launches.

    Only non-collapsing flows (PyTorch eager) include this pass: each
    full-size sub-kernel of a composite re-streams the tensor, so traffic
    scales with the op's ``traffic_passes`` and the dispatch model charges
    one launch per sub-kernel.
    """

    name = "composite-expansion"

    def run(self, state: LoweringState) -> None:
        assert state.drafts is not None, "composite expansion requires drafts"
        nodes = state.graph.nodes
        record = state.record_provenance
        expanded = 0
        for draft in state.drafts:
            if draft.fallback or len(draft.node_ids) != 1:
                continue
            op = nodes[draft.node_ids[0]].op
            if op.eager_kernels <= 1:
                continue
            draft.launch_count = op.eager_kernels
            passes = op.traffic_passes
            cost = draft.cost
            draft.cost = OpCost(
                flops=cost.flops,
                bytes_read=cost.bytes_read * passes,
                bytes_written=cost.bytes_written * passes,
            )
            expanded += 1
            if record:
                draft.tag(f"composite[{op.eager_kernels} launches]")
        state.note(self.name, expanded=expanded)


class TransferInsertionPass(LoweringPass):
    """Charge interconnect round trips to kernels forced off the target.

    A fallback op's compute is negligible next to the forced materialization:
    its cost becomes pure traffic (inputs cross the link down, outputs cross
    back up), mirroring the paper's ORT unsupported-operator study.  The
    simulator prices the traffic on the platform's link between the kernel's
    device and the plan's target (PCIe on the paper platforms, fabric DMA on
    the edge SoC).
    """

    name = "transfer-insertion"

    def run(self, state: LoweringState) -> None:
        assert state.drafts is not None, "transfer insertion requires drafts"
        nodes = state.graph.nodes
        record = state.record_provenance
        inserted = 0
        for draft in state.drafts:
            if not draft.fallback:
                continue
            node = nodes[draft.node_ids[0]]
            in_bytes = sum(v.spec.nbytes for v in node.inputs)
            out_bytes = sum(s.nbytes for s in node.outputs)
            draft.cost = OpCost(flops=0, bytes_read=in_bytes, bytes_written=out_bytes)
            draft.transfer_bytes_in = in_bytes
            draft.transfer_bytes_out = out_bytes
            inserted += 1
            if record:
                draft.tag(f"cpu-fallback[{in_bytes + out_bytes}B transfer]")
        state.note(self.name, fallback_kernels=inserted)


class SyncInsertionPass(LoweringPass):
    """Insert device-to-host round trips after data-dependent accelerator ops.

    Applies to any async device (GPU, NPU): the host must read the result
    size back before it can continue.  CPU kernels run inline and never sync.
    """

    name = "sync-insertion"

    def run(self, state: LoweringState) -> None:
        assert state.drafts is not None, "sync insertion requires drafts"
        nodes = state.graph.nodes
        record = state.record_provenance
        inserted = 0
        for draft in state.drafts:
            if (
                draft.fallback
                or len(draft.node_ids) != 1
                or draft.device is DeviceKind.CPU
            ):
                continue
            node = nodes[draft.node_ids[0]]
            if not node.op.forces_sync:
                continue
            draft.transfer_bytes_out = sum(s.nbytes for s in node.outputs)
            inserted += 1
            if record:
                draft.tag("sync[device->host round trip]")
        state.note(self.name, syncs=inserted)


class MetadataElisionPass(LoweringPass):
    """Mark shape-only kernels that the runtime never actually launches.

    View/reshape-style ops cost nothing unless a sync round-trip (or a CPU
    fallback) forces their data to exist; runs after SyncInsertionPass so a
    synced metadata op stays a real kernel.
    """

    name = "metadata-elision"

    def run(self, state: LoweringState) -> None:
        assert state.drafts is not None, "metadata elision requires drafts"
        nodes = state.graph.nodes
        record = state.record_provenance
        elided = 0
        for draft in state.drafts:
            if draft.fallback or len(draft.node_ids) != 1 or draft.transfer_bytes_out:
                continue
            if not nodes[draft.node_ids[0]].op.is_metadata_only:
                continue
            draft.metadata_only = True
            elided += 1
            if record:
                draft.tag("metadata-elided")
        state.note(self.name, elided=elided)
