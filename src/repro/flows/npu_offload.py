"""NPU offload flow: GEMM-family groups on the matrix engine, rest on host.

Edge NPUs (AMD XDNA, Apple ANE, Arm Ethos) are matrix engines first and
general accelerators a distant second: their runtimes compile the GEMM-family
subgraphs onto the systolic arrays and leave every other operator to the host
CPU (or iGPU).  That is exactly the paper's horizon pushed to its limit —
the accelerated fraction of the graph is *only* GEMM, so the non-GEMM share
of end-to-end latency explodes, amplified by fabric-DMA transfers around
every offloaded group.

Assembled **purely from existing passes**: the default
:meth:`~repro.flows.base.DeploymentFlow.build_pipeline` assembly with a
:class:`~repro.flows.passes.CategoryRoutePlacement` policy (GEMM to the
target device, everything else to the CPU) produces
fusion -> placement(category-route) -> construct -> transfer-insertion ->
sync-insertion -> metadata-elision.  Sweep it with ``devices=("npu",)`` on
Platform C; on ``gpu`` targets it degrades gracefully to a GEMM-only GPU
offload, and on ``cpu`` to a host-only run.
"""

from __future__ import annotations

from repro.flows.base import DeploymentFlow
from repro.flows.fusion import FusionConfig
from repro.flows.passes import (
    CategoryRoutePlacement,
    FusionPass,
    KernelConstructionPass,
    MetadataElisionPass,
    PassManager,
    PlacementPass,
    PlacementPolicy,
    SyncInsertionPass,
    TransferInsertionPass,
)
from repro.ops.base import OpCategory


class NPUOffloadFlow(DeploymentFlow):
    name = "npu-offload"
    #: NPU runtimes dispatch through an ORT-style session (graph handed to a
    #: vendor execution provider, host driver round trip per offload).
    dispatch_profile = "ort"
    #: the host side keeps conservative ORT-style chain fusion; the NPU side
    #: is GEMM-only anyway, so epilogue fusion would just create mixed groups.
    fusion = FusionConfig(
        gemm_epilogue=False,
        pointwise_chains=True,
        chain_norms=True,
        max_chain=4,
    )
    collapses_composites = True
    #: NPU compilers tile GEMMs explicitly and hit saturation earlier than
    #: stock GPU library heuristics.
    gemm_saturation_scale = 0.8
    uniform_placement = False  # per-category routing (see placement_policy)

    def placement_policy(self) -> PlacementPolicy:
        return CategoryRoutePlacement((OpCategory.GEMM,))

    def build_pipeline(self) -> PassManager:
        # the default non-uniform assembly, with mixed fusion groups split
        # rather than aborting: a host-side chain that picked up a GEMM stays
        # fused on the NPU side while the host members become singletons.
        return PassManager(
            (
                FusionPass(self.fusion),
                PlacementPass(self.placement_policy(), split_mixed_groups=True),
                KernelConstructionPass(collapse=True),
                TransferInsertionPass(),
                SyncInsertionPass(),
                MetadataElisionPass(),
            )
        )
