"""TensorRT deployment flow.

The most aggressive optimizer in the study: builds an engine with

* GEMM epilogue fusion — CONV/Linear + normalization + activation (+residual)
  collapse into the GEMM kernel.  This is the pattern that eliminates DETR's
  FrozenBatchNorm kernels (100% of them fuse with convolutions per the
  paper's Table V analysis);
* pointwise chain fusion for everything the epilogues don't absorb;
* minimal per-kernel dispatch (a prebuilt engine, not a framework).

Pipeline (assembled by ``DeploymentFlow.build_pipeline`` from the knobs
below): fusion -> placement(uniform) -> construct(collapse=1) ->
sync-insertion -> metadata-elision.
"""

from __future__ import annotations

from repro.flows.base import DeploymentFlow
from repro.flows.fusion import FusionConfig


class TensorRTFlow(DeploymentFlow):
    name = "tensorrt"
    dispatch_profile = "engine"
    fusion = FusionConfig(
        gemm_epilogue=True,
        max_epilogue=4,
        pointwise_chains=True,
        epilogue_norms=True,  # CONV+BN+ReLU folds into the GEMM kernel
        chain_norms=False,    # standalone LayerNorm/Softmax stay separate kernels
        max_chain=6,
    )
    collapses_composites = True
    # TensorRT enables TF32 tensor cores for fp32 and autotunes tactics.
    gemm_peak_scale_f32 = 8.0
    gemm_saturation_scale = 0.15
