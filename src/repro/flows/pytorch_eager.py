"""PyTorch eager-mode deployment flow.

No fusion at all: every graph op is its own kernel (or several — composite
Python implementations such as HuggingFace's NewGELU launch one kernel per
tensor expression), and every op pays full framework dispatch overhead.
This is the paper's baseline flow for Figs. 1 and 6.
"""

from __future__ import annotations

from repro.flows.base import DeploymentFlow
from repro.flows.fusion import FusionConfig


class PyTorchEagerFlow(DeploymentFlow):
    name = "pytorch"
    dispatch_profile = "eager"
    fusion = FusionConfig()  # nothing fuses
    collapses_composites = False
