"""PyTorch eager-mode deployment flow.

No fusion at all: every graph op is its own kernel (or several — composite
Python implementations such as HuggingFace's NewGELU launch one kernel per
tensor expression), and every op pays full framework dispatch overhead.
This is the paper's baseline flow for Figs. 1 and 6.

Pipeline (assembled by ``DeploymentFlow.build_pipeline`` from the knobs
below): fusion -> placement(uniform) -> construct(collapse=0) ->
composite-expansion -> sync-insertion -> metadata-elision.
"""

from __future__ import annotations

from repro.flows.base import DeploymentFlow
from repro.flows.fusion import FusionConfig


class PyTorchEagerFlow(DeploymentFlow):
    name = "pytorch"
    dispatch_profile = "eager"
    fusion = FusionConfig()  # nothing fuses
    collapses_composites = False  # adds CompositeExpansionPass to the pipeline
