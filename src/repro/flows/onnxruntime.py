"""ONNX Runtime deployment flow (CUDA execution provider).

ORT applies solid graph optimizations (fused LayerNorm/GELU, pointwise
chains, lower session overhead than eager PyTorch) — but its CUDA execution
provider does not implement every operator.  Unsupported ops are assigned to
the CPU provider, which forces their operands across PCIe in both
directions.  The paper's Fig. 7 shows the consequence on GPT2-XL: memory
operators balloon from 3.2% to ~67% of latency because the model's
Split/View/Expand-heavy attention code keeps bouncing between devices.

Pipeline (assembled by ``DeploymentFlow.build_pipeline`` from the knobs
below): fusion -> placement(per-op-fallback) -> construct(collapse=1) ->
transfer-insertion -> sync-insertion -> metadata-elision.
"""

from __future__ import annotations

from typing import ClassVar

from repro.flows.base import DeploymentFlow
from repro.flows.fusion import FusionConfig
from repro.flows.passes import PerOpFallbackPlacement, PlacementPolicy


class ONNXRuntimeFlow(DeploymentFlow):
    name = "onnxruntime"
    dispatch_profile = "ort"
    fusion = FusionConfig(
        gemm_epilogue=False,
        pointwise_chains=True,
        chain_norms=True,  # ORT ships fused LayerNorm/GELU graph rewrites
        max_chain=4,
    )
    collapses_composites = True
    gemm_saturation_scale = 0.6
    uniform_placement = False  # per-op CPU fallback (see placement_policy)

    #: op kinds the CUDA execution provider lacks kernels for; these fall
    #: back to the CPU provider with device<->host copies and stream-drain
    #: stalls around them.  The list models the paper's observation that
    #: "many memory operators in the evaluated LLMs are not supported by the
    #: CUDA execution provider" — GPT-2's exported attention is full of
    #: Split/Expand/Where nodes, while Llama-2's export is clean, which is
    #: exactly the asymmetry Fig. 7 shows.
    gpu_unsupported_kinds: ClassVar[frozenset[str]] = frozenset(
        {
            "split",
            "expand",
            "tril",
            "where",
            "nonzero",
            "index_add",
        }
    )

    def placement_policy(self) -> PlacementPolicy:
        return PerOpFallbackPlacement(self.gpu_unsupported_kinds)
