"""Execution plans: what a deployment flow actually runs.

A flow lowers an operator graph into an ordered list of
:class:`PlannedKernel`\\ s — possibly-fused groups of graph nodes assigned to
a device, with fusion-adjusted cost and optional PCIe transfers (for
CPU-fallback kernels).  The simulator walks this list.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import NamedTuple, Sequence

from repro.errors import PlanError
from repro.hardware.device import DeviceKind
from repro.ir.dtype import DType
from repro.ir.graph import Graph
from repro.ir.node import Node
from repro.ops.base import OpCategory, OpCost


class PlannedKernel(NamedTuple):
    """One schedulable unit: a single op or a fused group.

    A NamedTuple: tens of thousands are minted per lowering, so construction
    cost sits on the sweep engine's critical path.
    """

    name: str
    node_ids: tuple[int, ...]
    op_kinds: tuple[str, ...]
    category: OpCategory
    device: DeviceKind
    cost: OpCost
    dtype: DType
    metadata_only: bool = False
    is_custom: bool = False
    #: device kernels launched for this unit (eager composites launch many).
    launch_count: int = 1
    #: PCIe traffic for CPU-fallback kernels (ORT unsupported-op study).
    transfer_bytes_in: int = 0
    transfer_bytes_out: int = 0

    @property
    def fused(self) -> bool:
        return len(self.node_ids) > 1

    @property
    def is_gemm(self) -> bool:
        return self.category is OpCategory.GEMM


@dataclass
class ExecutionPlan:
    """A lowered graph, ready for simulation.

    ``graph`` is normally the :class:`~repro.ir.graph.Graph` the plan was
    lowered from; plans served by the persistent artifact store may instead
    carry a lazy :class:`~repro.sweep.cache.GraphRef` (same ``content_hash``
    /``materialize``/``name`` surface), which the rare structure-walking
    paths resolve on demand — the profiling hot path never does.
    """

    graph: Graph  # or a lazy GraphRef (see docstring)
    flow: str
    dispatch_profile: str  # key into hardware.calibration.DISPATCH_PROFILES
    kernels: list[PlannedKernel]
    #: the device class this lowering targeted; the simulator routes
    #: transfers of kernels forced off it over the platform's link table.
    #: (Defaults to GPU — the only accelerator the pre-N-device model knew.)
    target: DeviceKind = DeviceKind.GPU
    #: flow-level GEMM rate adjustments (see DeploymentFlow)
    gemm_peak_scale_f32: float = 1.0
    gemm_saturation_scale: float = 1.0
    notes: dict[str, object] = field(default_factory=dict)

    @property
    def num_kernels(self) -> int:
        return len(self.kernels)

    @property
    def num_fused_kernels(self) -> int:
        return sum(1 for k in self.kernels if k.fused)

    def content_hash(self) -> str:
        """Structural fingerprint of the lowered plan.

        Combines the source graph's content hash with the flow-level knobs and
        every kernel's schedulable identity, so two plans hash equal exactly
        when the simulator would produce identical timelines for them.
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(self.graph.content_hash().encode())
        digest.update(
            f"|{self.flow}|{self.dispatch_profile}|{self.target.value}"
            f"|{self.gemm_peak_scale_f32!r}|{self.gemm_saturation_scale!r}".encode()
        )
        for kernel in self.kernels:
            digest.update(
                f"\x00{kernel.node_ids}{kernel.category.name}{kernel.device.value}"
                f"{kernel.cost.flops},{kernel.cost.bytes_read},{kernel.cost.bytes_written}"
                f"{kernel.dtype.name}{int(kernel.metadata_only)}{int(kernel.is_custom)}"
                f"{kernel.launch_count},{kernel.transfer_bytes_in},{kernel.transfer_bytes_out}".encode()
            )
        return digest.hexdigest()

    def covered_node_count(self) -> int:
        """Number of graph nodes the kernels cover, memoized.

        Equals ``len(graph.compute_nodes())`` for any validated plan (the
        kernels partition the compute nodes exactly), which lets profiling
        report the graph's op count without touching graph structure — and,
        for store-loaded plans, without decoding the kernel list.
        """
        cached = self.__dict__.get("_covered_node_count")
        if cached is None:
            counter = getattr(self.kernels, "covered_node_count", None)
            if counter is not None:  # LazyKernelList: answered undecoded
                cached = counter()
            else:
                cached = sum(len(k.node_ids) for k in self.kernels)
            self.__dict__["_covered_node_count"] = cached
        return cached

    def covered_node_ids(self) -> set[int]:
        covered: set[int] = set()
        for kernel in self.kernels:
            covered.update(kernel.node_ids)
        return covered

    def validate(self) -> None:
        """Every compute node appears in exactly one kernel; order respects deps."""
        graph = self.graph.materialize()
        seen: set[int] = set()
        for kernel in self.kernels:
            for node_id in kernel.node_ids:
                if node_id in seen:
                    raise PlanError(f"node {node_id} planned twice in {self.flow}")
                seen.add(node_id)
        expected = {n.node_id for n in graph.compute_nodes()}
        missing = expected - seen
        extra = seen - expected
        if missing:
            raise PlanError(f"plan for {graph.name} misses nodes {sorted(missing)[:8]}")
        if extra:
            raise PlanError(f"plan for {graph.name} has unknown nodes {sorted(extra)[:8]}")

    def non_gemm_fusion_rate(self) -> float:
        """Fraction of non-GEMM graph ops that were fused away (paper Table V).

        Memoized: plans are immutable once lowered, and cached plans are
        re-profiled many times per sweep.
        """
        cached = self.__dict__.get("_non_gemm_fusion_rate")
        if cached is not None:
            return cached
        rate = self._compute_non_gemm_fusion_rate()
        self.__dict__["_non_gemm_fusion_rate"] = rate
        return rate

    def _compute_non_gemm_fusion_rate(self) -> float:
        nodes = self.graph.materialize().nodes
        non_gemm_total = 0
        non_gemm_fused = 0
        for kernel in self.kernels:
            for node_id in kernel.node_ids:
                node = nodes[node_id]
                if node.op.category is OpCategory.GEMM:
                    continue
                non_gemm_total += 1
                if kernel.fused:
                    non_gemm_fused += 1
        if non_gemm_total == 0:
            return 0.0
        return non_gemm_fused / non_gemm_total


def group_cost(graph: Graph, node_ids: tuple[int, ...]) -> OpCost:
    """Fusion-adjusted cost of a node group.

    FLOPs add up; traffic counts only values crossing the group boundary
    (external inputs once each, external outputs once each) plus weights —
    the whole point of fusion is that intermediates stay in registers/SRAM.
    """
    members = set(node_ids)
    flops = 0
    weight_bytes = 0
    read = 0
    consumers = graph.consumers()
    node_costs = graph.node_costs()
    seen_inputs: set[tuple[int, int]] = set()
    written = 0
    for node_id in node_ids:
        node = graph.nodes[node_id]
        base = node_costs[node_id]
        flops += base.flops
        weight_bytes += node.op.weight_bytes()
        for value in node.inputs:
            key = (value.node_id, value.port)
            if value.node_id not in members and key not in seen_inputs:
                seen_inputs.add(key)
                read += value.spec.nbytes
        for port, spec in enumerate(node.outputs):
            users = consumers.get((node_id, port), [])
            escapes = any(u not in members for u in users) or _is_graph_output(
                graph, node_id, port
            )
            if escapes:
                written += spec.nbytes
    return OpCost(flops=flops, bytes_read=read + weight_bytes, bytes_written=written)


def group_costs_batch(graph: Graph, groups: Sequence[tuple[int, ...]]) -> list[OpCost]:
    """Fusion-adjusted cost of every group in one walk of the graph.

    Produces exactly :func:`group_cost` of each group (integer sums are
    exact regardless of association order), but amortizes the boundary
    analysis: instead of per-group member sets and consumer-map probes, one
    pass over the graph's edges classifies every value as internal or
    escaping.  Kernel construction calls this once per lowering, which is
    where profiling shows the cold path's per-group set arithmetic.
    """
    owner: dict[int, int] = {}
    for index, group in enumerate(groups):
        for node_id in group:
            owner[node_id] = index
    node_costs = graph.node_costs()
    nodes = graph.nodes
    count = len(groups)
    flops = [0] * count
    read = [0] * count
    weights = [0] * count
    written = [0] * count
    #: (group, producer, port) pairs already charged as reads — a group
    #: streams each external value once however many members consume it.
    seen_reads: set[tuple[int, int, int]] = set()
    #: (producer, port) values consumed outside their producer's group.
    escapes: set[tuple[int, int]] = set()
    get_owner = owner.get
    for node in nodes:
        group_index = get_owner(node.node_id)
        if group_index is None:
            # not in any costed group: only relevant as an outside consumer.
            for value in node.inputs:
                if get_owner(value.node_id) is not None:
                    escapes.add((value.node_id, value.port))
            continue
        base = node_costs[node.node_id]
        flops[group_index] += base.flops
        weights[group_index] += node.op.weight_bytes()
        for value in node.inputs:
            producer = value.node_id
            if get_owner(producer) != group_index:
                key = (group_index, producer, value.port)
                if key not in seen_reads:
                    seen_reads.add(key)
                    read[group_index] += value.spec.nbytes
                if producer in owner:
                    escapes.add((producer, value.port))
    for value in graph.outputs:
        if get_owner(value.node_id) is not None:
            escapes.add((value.node_id, value.port))
    for producer, port in escapes:
        written[owner[producer]] += nodes[producer].outputs[port].nbytes
    return [
        OpCost(flops=flops[i], bytes_read=read[i] + weights[i], bytes_written=written[i])
        for i in range(count)
    ]


def _is_graph_output(graph: Graph, node_id: int, port: int) -> bool:
    return any(v.node_id == node_id and v.port == port for v in graph.outputs)


def node_base_cost(node: Node) -> OpCost:
    """Unfused cost of a single node."""
    return node.op.cost([v.spec for v in node.inputs], list(node.outputs))
