"""Quantization passes (LLM.int8() study of the paper's Section IV-C)."""

from repro.quant.llm_int8 import QuantizationStats, QuantizedModel, quantize_llm_int8

__all__ = ["QuantizationStats", "QuantizedModel", "quantize_llm_int8"]
