"""LLM.int8()-style post-training quantization as a graph transform.

Rewrites every large-enough Linear layer of a floating-point graph into the
mixed-precision decomposition of Dettmers et al.:

    x ──► Quantize ──► Int8Linear ──► Dequantize ──► × weight-scale ──► (+bias)
     │                                                              ▲
     └──► outlier columns (Slice) ──► fp16 Linear ─────────────────┘

plus the outlier-detection arithmetic (abs/threshold/reduce) that runs
before each quantized matmul.  Every inserted Quantize/Dequantize lands in
the paper's "Q/DQ" operator group and every scale/add in "Element-wise
Arithmetic" — the added non-GEMM work whose growth with sequence length
Fig. 9 charts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import ops
from repro.ir.dtype import DType
from repro.ir.graph import Graph
from repro.ir.node import Node, Value
from repro.ops.gemm import Linear


@dataclass
class QuantizationStats:
    """Accounting of what the pass changed (paper: "6510 additional operators")."""

    linears_quantized: int = 0
    linears_kept_fp: int = 0
    ops_before: int = 0
    ops_after: int = 0
    qdq_ops_added: int = 0
    elementwise_ops_added: int = 0

    @property
    def ops_added(self) -> int:
        return self.ops_after - self.ops_before


@dataclass
class QuantizedModel:
    """Result of the pass: the rewritten graph plus its accounting."""

    graph: Graph
    stats: QuantizationStats = field(default_factory=QuantizationStats)


def quantize_llm_int8(
    graph: Graph,
    min_features: int = 1024,
    outlier_fraction: float = 0.002,
    compute_dtype: DType = DType.F16,
) -> QuantizedModel:
    """Apply LLM.int8() to ``graph``, returning a rewritten copy.

    Linears with either dimension below ``min_features`` stay in floating
    point (LLM.int8() quantizes "more than 99% of linear layers" — the tiny
    projection heads are the exception).
    """
    graph.validate()
    new = Graph(f"{graph.name}-int8")
    stats = QuantizationStats(ops_before=len(graph.compute_nodes()))
    mapping: dict[tuple[int, int], Value] = {}

    for node in graph.nodes:
        if node.is_placeholder:
            mapping[(node.node_id, 0)] = new.input(node.outputs[0], node.name)
            continue
        inputs = [mapping[(v.node_id, v.port)] for v in node.inputs]
        if _should_quantize(node, min_features):
            out = _emit_int8_linear(new, node, inputs[0], outlier_fraction, compute_dtype, stats)
            mapping[(node.node_id, 0)] = out
            stats.linears_quantized += 1
            continue
        if isinstance(node.op, Linear):
            stats.linears_kept_fp += 1
        result = new.call(node.op, *inputs, name=node.name)
        # Value is itself a (named) tuple, so test for it, not for tuple-ness.
        values = (result,) if isinstance(result, Value) else result
        for port, value in enumerate(values):
            mapping[(node.node_id, port)] = value

    new.set_outputs(*[mapping[(v.node_id, v.port)] for v in graph.outputs])
    stats.ops_after = len(new.compute_nodes())
    return QuantizedModel(graph=new, stats=stats)


def _should_quantize(node: Node, min_features: int) -> bool:
    op = node.op
    return (
        isinstance(op, Linear)
        and op.in_features >= min_features
        and op.out_features >= min_features
    )


def _emit_int8_linear(
    g: Graph,
    node: Node,
    x: Value,
    outlier_fraction: float,
    compute_dtype: DType,
    stats: QuantizationStats,
) -> Value:
    op: Linear = node.op  # type: ignore[assignment]
    in_f, out_f = op.in_features, op.out_features
    outlier_cols = max(1, int(in_f * outlier_fraction))
    name = node.name

    # outlier detection: abs -> column max -> threshold compare
    magnitude = g.call(ops.Abs(), x, name=f"{name}_absmax")
    col_max = g.call(ops.Max(-2, keepdim=True), magnitude, name=f"{name}_colmax")
    threshold = g.call(
        ops.Constant(col_max.spec.shape, compute_dtype, name="outlier_threshold"),
        name=f"{name}_threshold",
    )
    _ = g.call(ops.Sub(), col_max, threshold, name=f"{name}_outlier_mask")
    stats.elementwise_ops_added += 3

    # int8 path: rowwise quantize, int8 GEMM, dequantize, weight scale
    q, sx = g.call(ops.Quantize(), x, name=f"{name}_quantize")
    acc = g.call(ops.Int8Linear(in_f, out_f), q, name=f"{name}_int8")
    deq = g.call(ops.Dequantize(compute_dtype), acc, sx, name=f"{name}_dequantize")
    w_scale = g.call(
        ops.Constant((1, out_f), compute_dtype, name="weight_scale"), name=f"{name}_wscale"
    )
    y = g.call(ops.Mul(), deq, w_scale, name=f"{name}_apply_wscale")
    stats.qdq_ops_added += 2
    stats.elementwise_ops_added += 1

    # fp16 outlier path: slice the outlier columns and matmul in fp16
    lo = g.call(ops.Slice(-1, 0, outlier_cols), x, name=f"{name}_outlier_slice")
    fp = g.call(
        ops.Linear(outlier_cols, out_f, bias=False, dtype=compute_dtype),
        lo,
        name=f"{name}_outlier_fp16",
    )
    y = g.call(ops.Add(), y, fp, name=f"{name}_merge_outliers")
    stats.elementwise_ops_added += 1

    if op.bias:
        bias = g.call(
            ops.Constant((1, out_f), compute_dtype, name="bias"), name=f"{name}_bias"
        )
        y = g.call(ops.Add(), y, bias, name=f"{name}_add_bias")
        stats.elementwise_ops_added += 1
    return y
