"""Chrome-trace export of a profile (one of the paper artifact's outputs).

Produces a ``chrome://tracing`` / Perfetto-compatible JSON timeline: one
track per device, one complete event per kernel, with operator group and
roofline-bound recorded as event arguments.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.hardware.device import DeviceKind
from repro.profiler.records import ProfileResult

#: one trace track per device kind, in DeviceKind declaration order.
_PID = {kind.value: pid for pid, kind in enumerate(DeviceKind, start=1)}


def trace_events(profile: ProfileResult) -> list[dict]:
    """The trace as a list of chrome-trace event dicts."""
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": f"{device} ({profile.platform.platform_id})"},
        }
        for device, pid in _PID.items()
    ]
    cursor = 0.0  # microseconds; kernels laid out serially as simulated
    for record in profile.records:
        duration_us = record.latency_s * 1e6
        device = record.device.value
        events.append(
            {
                "name": record.name,
                "cat": record.group.value,
                "ph": "X",
                "ts": round(cursor, 3),
                "dur": round(duration_us, 3),
                "pid": _PID[device],
                "tid": 1,
                "args": {
                    "ops": "+".join(record.op_kinds),
                    "group": record.group.value,
                    "bound": record.bound,
                    "flops": record.flops,
                    "bytes": record.bytes_moved,
                    "fused": record.fused,
                },
            }
        )
        cursor += duration_us
    return events


def export_chrome_trace(profile: ProfileResult, path: str | Path) -> Path:
    """Write the profile as a chrome-trace JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "traceEvents": trace_events(profile),
        "displayTimeUnit": "ms",
        "otherData": {
            "model": profile.model,
            "flow": profile.flow,
            "platform": profile.platform.platform_id,
            "batch": profile.batch_size,
            "total_latency_ms": profile.total_latency_ms,
        },
    }
    path.write_text(json.dumps(payload))
    return path
