"""Cross-profile aggregation helpers used by the figure/table harnesses."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ops.base import OpCategory
from repro.profiler.records import GROUP_ORDER, ProfileResult


@dataclass(frozen=True)
class GroupBreakdown:
    """Percentage latency breakdown of one profile, in figure display order."""

    label: str
    total_latency_ms: float
    shares: dict[OpCategory, float]

    def share(self, group: OpCategory) -> float:
        return self.shares.get(group, 0.0)

    @property
    def gemm_pct(self) -> float:
        return 100.0 * self.share(OpCategory.GEMM)

    @property
    def non_gemm_pct(self) -> float:
        return 100.0 - self.gemm_pct


def breakdown(profile: ProfileResult, label: str | None = None) -> GroupBreakdown:
    """Latency-share breakdown of one profile in paper group order."""
    shares = profile.share_by_group()
    ordered = {g: shares.get(g, 0.0) for g in GROUP_ORDER if shares.get(g, 0.0) > 0.0}
    return GroupBreakdown(
        label=label or profile.describe(),
        total_latency_ms=profile.total_latency_ms,
        shares=ordered,
    )


def average_share(profiles: list[ProfileResult], group: OpCategory | None = None) -> float:
    """Mean share across profiles: of ``group``, or of all non-GEMM when None."""
    if not profiles:
        return 0.0
    if group is None:
        return sum(p.non_gemm_share for p in profiles) / len(profiles)
    return sum(p.share_by_group().get(group, 0.0) for p in profiles) / len(profiles)


def dominant_group_table(
    profiles: dict[str, list[ProfileResult]],
) -> list[tuple[str, OpCategory, float]]:
    """Paper Table IV: per model, the heaviest non-GEMM group averaged over batches.

    ``profiles`` maps model name -> its profiles (e.g. batch 1 and 8).
    Returns (model, group, mean share of total latency).
    """
    rows: list[tuple[str, OpCategory, float]] = []
    for model, runs in profiles.items():
        if not runs:
            continue
        group_shares: dict[OpCategory, float] = {}
        for profile in runs:
            for group, share in profile.share_by_group().items():
                if group is OpCategory.GEMM:
                    continue
                group_shares[group] = group_shares.get(group, 0.0) + share / len(runs)
        if not group_shares:
            continue
        best = max(group_shares.items(), key=lambda kv: kv[1])
        rows.append((model, best[0], best[1]))
    return rows
