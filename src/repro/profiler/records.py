"""Profiling record types and the profile result container."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.device import DeviceKind
from repro.hardware.platform import Platform
from repro.ops.base import MISC_LIKE, OpCategory

#: Display order of operator groups in the paper's figures.
GROUP_ORDER = [
    OpCategory.GEMM,
    OpCategory.ACTIVATION,
    OpCategory.NORMALIZATION,
    OpCategory.MEMORY,
    OpCategory.ROI,
    OpCategory.INTERPOLATION,
    OpCategory.ELEMENTWISE,
    OpCategory.LOGIT,
    OpCategory.QDQ,
    OpCategory.EMBEDDING,
    OpCategory.MISC,
]


def report_group(category: OpCategory) -> OpCategory:
    """Map fine categories onto the paper's reporting groups (Misc folds pooling/reduction)."""
    if category in MISC_LIKE:
        return OpCategory.MISC
    return category


@dataclass(frozen=True)
class OpRecord:
    """Mean profiled timing of one kernel across iterations."""

    name: str
    op_kinds: tuple[str, ...]
    category: OpCategory
    device: DeviceKind
    latency_s: float
    latency_std_s: float
    flops: int
    bytes_moved: int
    fused: bool
    bound: str

    @property
    def is_gemm(self) -> bool:
        return self.category is OpCategory.GEMM

    @property
    def group(self) -> OpCategory:
        return report_group(self.category)


@dataclass
class ProfileResult:
    """Operator-level profile of one (model, flow, platform, batch) point."""

    model: str
    flow: str
    platform: Platform
    use_gpu: bool
    batch_size: int
    iterations: int
    records: list[OpRecord] = field(default_factory=list)
    total_latency_s: float = 0.0
    total_latency_std_s: float = 0.0
    gpu_energy_j: float = 0.0
    cpu_energy_j: float = 0.0
    peak_memory_bytes: int = 0
    num_graph_ops: int = 0
    num_kernels: int = 0
    non_gemm_fusion_rate: float = 0.0

    # -- aggregation -----------------------------------------------------------

    @property
    def total_latency_ms(self) -> float:
        return self.total_latency_s * 1e3

    def latency_by_group(self) -> dict[OpCategory, float]:
        """Seconds per reporting group (the paper's stacked-bar breakdown)."""
        out: dict[OpCategory, float] = {}
        for record in self.records:
            out[record.group] = out.get(record.group, 0.0) + record.latency_s
        return out

    def share_by_group(self) -> dict[OpCategory, float]:
        """Fraction of total latency per reporting group."""
        total = self.total_latency_s or 1.0
        return {g: t / total for g, t in self.latency_by_group().items()}

    @property
    def gemm_latency_s(self) -> float:
        return sum(r.latency_s for r in self.records if r.is_gemm)

    @property
    def non_gemm_latency_s(self) -> float:
        return sum(r.latency_s for r in self.records if not r.is_gemm)

    @property
    def gemm_share(self) -> float:
        return self.gemm_latency_s / (self.total_latency_s or 1.0)

    @property
    def non_gemm_share(self) -> float:
        return self.non_gemm_latency_s / (self.total_latency_s or 1.0)

    def dominant_non_gemm_group(self) -> tuple[OpCategory, float]:
        """The paper's Table IV: heaviest non-GEMM group and its share of total."""
        best: tuple[OpCategory, float] | None = None
        for group, latency in self.latency_by_group().items():
            if group is OpCategory.GEMM:
                continue
            share = latency / (self.total_latency_s or 1.0)
            if best is None or share > best[1]:
                best = (group, share)
        if best is None:
            return (OpCategory.MISC, 0.0)
        return best

    def top_operators(self, n: int = 10, non_gemm_only: bool = False) -> list[OpRecord]:
        records = [r for r in self.records if not (non_gemm_only and r.is_gemm)]
        return sorted(records, key=lambda r: r.latency_s, reverse=True)[:n]

    def describe(self) -> str:
        device = "CPU+GPU" if self.use_gpu else "CPU"
        return (
            f"{self.model} b{self.batch_size} [{self.flow}, platform {self.platform.platform_id},"
            f" {device}]: {self.total_latency_ms:.2f} ms,"
            f" non-GEMM {self.non_gemm_share:.1%}"
        )
