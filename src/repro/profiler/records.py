"""Profiling record types and the profile result container.

:class:`ProfileResult` has two faces: an array-backed one used on the sweep
hot path (per-kernel latencies, bounds, and group indices as numpy arrays,
aggregated with vectorized reductions) and a record-object one
(:class:`OpRecord` per kernel) materialized lazily for reports, traces, and
tests.  Both produce bit-identical aggregates: the vectorized reductions
accumulate in record order exactly like the original per-record loops.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, NamedTuple

import numpy as np

from repro.hardware.cost_model import BOUND_LABELS
from repro.hardware.device import DeviceKind
from repro.hardware.platform import Platform
from repro.ops.base import MISC_LIKE, OpCategory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flows.plan import ExecutionPlan

#: Display order of operator groups in the paper's figures.
GROUP_ORDER = [
    OpCategory.GEMM,
    OpCategory.ACTIVATION,
    OpCategory.NORMALIZATION,
    OpCategory.MEMORY,
    OpCategory.ROI,
    OpCategory.INTERPOLATION,
    OpCategory.ELEMENTWISE,
    OpCategory.LOGIT,
    OpCategory.QDQ,
    OpCategory.EMBEDDING,
    OpCategory.MISC,
]


def report_group(category: OpCategory) -> OpCategory:
    """Map fine categories onto the paper's reporting groups (Misc folds pooling/reduction)."""
    if category in MISC_LIKE:
        return OpCategory.MISC
    return category


class OpRecord(NamedTuple):
    """Mean profiled timing of one kernel across iterations.

    A NamedTuple: profiles materialize one record per kernel per sweep point,
    and tuple construction keeps that path cheap.
    """

    name: str
    op_kinds: tuple[str, ...]
    category: OpCategory
    device: DeviceKind
    latency_s: float
    latency_std_s: float
    flops: int
    bytes_moved: int
    fused: bool
    bound: str

    @property
    def is_gemm(self) -> bool:
        return self.category is OpCategory.GEMM

    @property
    def group(self) -> OpCategory:
        return report_group(self.category)


class ProfileResult:
    """Operator-level profile of one (model, flow, platform, batch) point."""

    def __init__(
        self,
        model: str,
        flow: str,
        platform: Platform,
        use_gpu: bool,
        batch_size: int,
        iterations: int,
        records: list[OpRecord] | None = None,
        total_latency_s: float = 0.0,
        total_latency_std_s: float = 0.0,
        gpu_energy_j: float = 0.0,
        cpu_energy_j: float = 0.0,
        energy_j: dict[DeviceKind, float] | None = None,
        target: DeviceKind | None = None,
        peak_memory_bytes: int = 0,
        num_graph_ops: int = 0,
        num_kernels: int = 0,
        non_gemm_fusion_rate: float = 0.0,
        plan: "ExecutionPlan | None" = None,
        kernel_latency_s: np.ndarray | None = None,
        kernel_latency_std_s: np.ndarray | None = None,
        bound_code: np.ndarray | None = None,
        gemm_mask: np.ndarray | None = None,
        group_categories: list[OpCategory] | None = None,
        group_pos: np.ndarray | None = None,
    ):
        self.model = model
        self.flow = flow
        self.platform = platform
        self.use_gpu = use_gpu
        #: the placement target this profile ran against (None when the
        #: caller used the legacy boolean API and didn't name a device).
        self.target = target if target is not None else (
            DeviceKind.GPU if use_gpu else DeviceKind.CPU
        )
        self.batch_size = batch_size
        self.iterations = iterations
        self.total_latency_s = total_latency_s
        self.total_latency_std_s = total_latency_std_s
        if energy_j is None:
            # legacy two-field construction: fold into the per-device dict
            energy_j = {}
            if gpu_energy_j:
                energy_j[DeviceKind.GPU] = gpu_energy_j
            if cpu_energy_j:
                energy_j[DeviceKind.CPU] = cpu_energy_j
        #: joules per device kind over the simulated run (idle + dynamic).
        self.energy_j: dict[DeviceKind, float] = dict(energy_j)
        self.peak_memory_bytes = peak_memory_bytes
        self.num_graph_ops = num_graph_ops
        self.num_kernels = num_kernels
        self.non_gemm_fusion_rate = non_gemm_fusion_rate
        self._records = records
        self._plan = plan
        self._kernel_latency_s = kernel_latency_s
        self._kernel_latency_std_s = kernel_latency_std_s
        self._bound_code = bound_code
        self._gemm_mask = gemm_mask
        self._group_categories = group_categories
        self._group_pos = group_pos
        self._latency_by_group: dict[OpCategory, float] | None = None
        self._non_gemm_latency_s: float | None = None

    @property
    def records(self) -> list[OpRecord]:
        """Per-kernel records, materialized on first access from the arrays."""
        if self._records is None:
            plan = self._plan
            latency = self._kernel_latency_s
            std = self._kernel_latency_std_s
            codes = self._bound_code
            assert plan is not None and latency is not None
            assert std is not None and codes is not None
            self._records = [
                OpRecord(
                    name=kernel.name,
                    op_kinds=kernel.op_kinds,
                    category=kernel.category,
                    device=kernel.device,
                    latency_s=float(latency[i]),
                    latency_std_s=float(std[i]),
                    flops=kernel.cost.flops,
                    bytes_moved=kernel.cost.total_bytes,
                    fused=kernel.fused,
                    bound=BOUND_LABELS[codes[i]],
                )
                for i, kernel in enumerate(plan.kernels)
            ]
        return self._records

    def detach(self) -> "ProfileResult":
        """Materialize the records and drop the plan/array backrefs.

        A ProfileResult lazily references its ExecutionPlan (and through it
        the whole Graph); shipping one independent copy per record over IPC
        — or pinning one per record in a long-lived result set — grows with
        the grid.  ``detach`` forces the per-kernel :class:`OpRecord` list
        into existence while the plan is at hand, then clears every lazy
        field so the result is self-contained.  Aggregations fall back to
        the record-order loops, which are bit-identical to the array paths.
        Returns ``self`` for chaining.  New lazy fields must be cleared here
        rather than at call sites.
        """
        self.records  # force materialization while the plan is available
        self._plan = None
        self._kernel_latency_s = None
        self._kernel_latency_std_s = None
        self._bound_code = None
        self._gemm_mask = None
        self._group_pos = None
        return self

    # -- aggregation -----------------------------------------------------------

    @property
    def gpu_energy_j(self) -> float:
        return self.energy_j.get(DeviceKind.GPU, 0.0)

    @property
    def cpu_energy_j(self) -> float:
        return self.energy_j.get(DeviceKind.CPU, 0.0)

    @property
    def total_latency_ms(self) -> float:
        return self.total_latency_s * 1e3

    def latency_by_group(self) -> dict[OpCategory, float]:
        """Seconds per reporting group (the paper's stacked-bar breakdown).

        Memoized; on the array path a bincount accumulates each group's
        kernels in record order, matching the per-record loop bit-for-bit.
        """
        if self._latency_by_group is None:
            if self._group_pos is not None and self._kernel_latency_s is not None:
                groups = self._group_categories or []
                sums = np.bincount(
                    self._group_pos,
                    weights=self._kernel_latency_s,
                    minlength=len(groups),
                )
                self._latency_by_group = {
                    group: float(sums[i]) for i, group in enumerate(groups)
                }
            else:
                out: dict[OpCategory, float] = {}
                for record in self.records:
                    group = report_group(record.category)
                    out[group] = out.get(group, 0.0) + record.latency_s
                self._latency_by_group = out
        return self._latency_by_group

    def share_by_group(self) -> dict[OpCategory, float]:
        """Fraction of total latency per reporting group."""
        total = self.total_latency_s or 1.0
        return {g: t / total for g, t in self.latency_by_group().items()}

    @property
    def gemm_latency_s(self) -> float:
        return self.latency_by_group().get(OpCategory.GEMM, 0.0)

    @property
    def non_gemm_latency_s(self) -> float:
        # summed in record order (not per-group) to stay bit-identical with
        # the original per-record accumulation.
        if self._non_gemm_latency_s is None:
            if self._gemm_mask is not None and self._kernel_latency_s is not None:
                masked = np.where(self._gemm_mask, 0.0, self._kernel_latency_s)
                total = float(np.cumsum(masked)[-1]) if len(masked) else 0.0
            else:
                total = sum(r.latency_s for r in self.records if not r.is_gemm)
            self._non_gemm_latency_s = total
        return self._non_gemm_latency_s

    @property
    def gemm_share(self) -> float:
        return self.gemm_latency_s / (self.total_latency_s or 1.0)

    @property
    def non_gemm_share(self) -> float:
        return self.non_gemm_latency_s / (self.total_latency_s or 1.0)

    def dominant_non_gemm_group(self) -> tuple[OpCategory, float]:
        """The paper's Table IV: heaviest non-GEMM group and its share of total."""
        best: tuple[OpCategory, float] | None = None
        for group, latency in self.latency_by_group().items():
            if group is OpCategory.GEMM:
                continue
            share = latency / (self.total_latency_s or 1.0)
            if best is None or share > best[1]:
                best = (group, share)
        if best is None:
            return (OpCategory.MISC, 0.0)
        return best

    def top_operators(self, n: int = 10, non_gemm_only: bool = False) -> list[OpRecord]:
        records = [r for r in self.records if not (non_gemm_only and r.is_gemm)]
        return sorted(records, key=lambda r: r.latency_s, reverse=True)[:n]

    def describe(self) -> str:
        device = f"CPU+{self.target.value.upper()}" if self.use_gpu else "CPU"
        return (
            f"{self.model} b{self.batch_size} [{self.flow}, platform {self.platform.platform_id},"
            f" {device}]: {self.total_latency_ms:.2f} ms,"
            f" non-GEMM {self.non_gemm_share:.1%}"
        )
