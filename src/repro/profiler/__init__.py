"""Operator-level profiling of lowered model graphs."""

from repro.profiler.aggregate import (
    GroupBreakdown,
    average_share,
    breakdown,
    dominant_group_table,
)
from repro.profiler.profiler import profile_graph
from repro.profiler.records import GROUP_ORDER, OpRecord, ProfileResult, report_group
from repro.profiler.trace import export_chrome_trace, trace_events

__all__ = [
    "GROUP_ORDER",
    "GroupBreakdown",
    "OpRecord",
    "ProfileResult",
    "average_share",
    "breakdown",
    "dominant_group_table",
    "export_chrome_trace",
    "profile_graph",
    "report_group",
    "trace_events",
]
