"""The profiling loop: simulate a plan repeatedly and aggregate statistics.

Mirrors the paper's methodology: N warm profiling iterations per
configuration, per-operator latency collection, then aggregation into
operator groups.  Run-to-run jitter is modelled with a deterministic seeded
multiplicative noise so that repeated profiles have realistic variance
without being flaky.

Hot-path plumbing: lowering and memory profiling go through the sweep
engine's :class:`~repro.sweep.cache.PlanCache` (so repeated profiles of the
same graph/flow reuse the plan and liveness walk), and the simulator's
vectorized array view feeds the per-kernel statistics directly — no
per-kernel estimate objects are materialized while profiling.
"""

from __future__ import annotations

import math

import numpy as np

from repro.flows.base import DeploymentFlow
from repro.flows.plan import ExecutionPlan
from repro.hardware.device import DeviceKind, as_device_kind
from repro.hardware.platform import Platform
from repro.ir.graph import Graph
from repro.hardware.cost_model import BOUND_LABELS
from repro.ops.base import OpCategory
from repro.profiler.records import ProfileResult, report_group
from repro.runtime.simulator import _CATEGORIES, plan_arrays, simulate
from repro.sweep.cache import cached_lower, cached_profile_memory

#: relative run-to-run jitter of kernel latencies (std of multiplicative noise)
JITTER_STD = 0.03

#: report-group category index of each fine category, aligned with the
#: simulator's category order (used to group kernels without Python loops).
_GROUP_OF_CATEGORY = np.array(
    [_CATEGORIES.index(report_group(category)) for category in _CATEGORIES]
)


def _plan_group_index(plan: ExecutionPlan) -> tuple[list[OpCategory], np.ndarray]:
    """Per-kernel reporting-group positions, in first-occurrence order.

    Memoized on the plan: the group partition is a pure function of the
    kernel list, and every profile of the plan reuses it.
    """
    cached = plan.__dict__.get("_group_index")
    if cached is None:
        group_cat = _GROUP_OF_CATEGORY[plan_arrays(plan).category_idx]
        unique_cats, first_idx, inverse = np.unique(
            group_cat, return_index=True, return_inverse=True
        )
        order = np.argsort(first_idx, kind="stable")
        rank = np.empty(len(order), dtype=np.int64)
        rank[order] = np.arange(len(order))
        groups = [_CATEGORIES[unique_cats[i]] for i in order]
        cached = (groups, rank[inverse])
        plan.__dict__["_group_index"] = cached
    return cached


def profile_graph(
    graph: Graph,
    flow: DeploymentFlow,
    platform: Platform,
    use_gpu: "bool | str | DeviceKind" = True,
    batch_size: int = 1,
    iterations: int = 5,
    seed: int = 0,
    model_name: str | None = None,
) -> ProfileResult:
    """Profile one model graph under one deployment flow on one platform.

    ``use_gpu`` keeps its historical name and booleans but accepts any
    :class:`~repro.hardware.device.DeviceKind` (or device-mode string) as
    the placement target; targets the platform lacks fall back to the host
    CPU, exactly as missing GPUs always have.

    ``graph`` may also be a lazy :class:`~repro.sweep.cache.GraphRef`: the
    whole profile is derivable from the cached/stored plan and memory
    profile, so when both tiers are warm the graph is never built.
    """
    target = as_device_kind(use_gpu)
    if target is not DeviceKind.CPU and not platform.has_device(target):
        target = DeviceKind.CPU
    use_gpu = target is not DeviceKind.CPU
    plan = cached_lower(flow, graph, target)
    baseline = simulate(plan, platform)
    rng = np.random.default_rng(seed)

    # per-kernel noisy samples across iterations
    base_latencies = baseline.latencies
    n_kernels = len(base_latencies)
    noise = 1.0 + JITTER_STD * rng.standard_normal((iterations, n_kernels))
    noise = np.clip(noise, 0.7, 1.3)
    samples = noise * base_latencies[None, :]

    mean_lat = samples.mean(axis=0)
    std_lat = samples.std(axis=0)
    totals = samples.sum(axis=1)

    estimates = baseline.estimates
    if estimates is not None:
        bound_code = estimates.bound_code
    else:
        # reference-backend run: recover the codes from the scalar records so
        # ProfileResult has a single record-materialization path either way.
        bound_code = np.array(
            [BOUND_LABELS.index(b) for b in baseline.bound_labels()], dtype=np.int8
        )
    groups, group_pos = _plan_group_index(plan)

    memory = cached_profile_memory(graph)
    scale = float(totals.mean()) / baseline.total_latency_s if baseline.total_latency_s else 1.0
    return ProfileResult(
        model=model_name or graph.name,
        flow=flow.name,
        platform=platform,
        use_gpu=use_gpu,
        target=target,
        batch_size=batch_size,
        iterations=iterations,
        total_latency_s=float(totals.mean()),
        total_latency_std_s=float(totals.std()) / math.sqrt(max(iterations, 1)),
        energy_j={kind: joules * scale for kind, joules in baseline.energy_j.items()},
        peak_memory_bytes=memory.peak_total_bytes,
        # the kernels partition the graph's compute nodes exactly (enforced
        # by ExecutionPlan.validate at lowering time), so this equals
        # len(graph.compute_nodes()) without touching graph structure.
        num_graph_ops=plan.covered_node_count(),
        num_kernels=plan.num_kernels,
        non_gemm_fusion_rate=plan.non_gemm_fusion_rate(),
        plan=plan,
        kernel_latency_s=mean_lat,
        kernel_latency_std_s=std_lat,
        bound_code=bound_code,
        gemm_mask=plan_arrays(plan).is_gemm,
        group_categories=groups,
        group_pos=group_pos,
    )
