"""The profiling loop: simulate a plan repeatedly and aggregate statistics.

Mirrors the paper's methodology: N warm profiling iterations per
configuration, per-operator latency collection, then aggregation into
operator groups.  Run-to-run jitter is modelled with a deterministic seeded
multiplicative noise so that repeated profiles have realistic variance
without being flaky.
"""

from __future__ import annotations

import math

import numpy as np

from repro.flows.base import DeploymentFlow
from repro.hardware.platform import Platform
from repro.ir.graph import Graph
from repro.profiler.records import OpRecord, ProfileResult
from repro.runtime.memory import profile_memory
from repro.runtime.simulator import simulate

#: relative run-to-run jitter of kernel latencies (std of multiplicative noise)
JITTER_STD = 0.03


def profile_graph(
    graph: Graph,
    flow: DeploymentFlow,
    platform: Platform,
    use_gpu: bool = True,
    batch_size: int = 1,
    iterations: int = 5,
    seed: int = 0,
    model_name: str | None = None,
) -> ProfileResult:
    """Profile one model graph under one deployment flow on one platform."""
    if use_gpu and not platform.has_gpu:
        use_gpu = False
    plan = flow.lower(graph, use_gpu=use_gpu)
    baseline = simulate(plan, platform)
    rng = np.random.default_rng(seed)

    # per-kernel noisy samples across iterations
    n_kernels = len(baseline.records)
    noise = 1.0 + JITTER_STD * rng.standard_normal((iterations, n_kernels))
    noise = np.clip(noise, 0.7, 1.3)
    base_latencies = np.array([r.latency_s for r in baseline.records])
    samples = noise * base_latencies[None, :]

    mean_lat = samples.mean(axis=0)
    std_lat = samples.std(axis=0)
    totals = samples.sum(axis=1)

    records = [
        OpRecord(
            name=rec.kernel.name,
            op_kinds=rec.kernel.op_kinds,
            category=rec.kernel.category,
            device=rec.kernel.device,
            latency_s=float(mean_lat[i]),
            latency_std_s=float(std_lat[i]),
            flops=rec.kernel.cost.flops,
            bytes_moved=rec.kernel.cost.total_bytes,
            fused=rec.kernel.fused,
            bound=rec.estimate.bound,
        )
        for i, rec in enumerate(baseline.records)
    ]

    memory = profile_memory(graph)
    scale = float(totals.mean()) / baseline.total_latency_s if baseline.total_latency_s else 1.0
    return ProfileResult(
        model=model_name or graph.name,
        flow=flow.name,
        platform=platform,
        use_gpu=use_gpu,
        batch_size=batch_size,
        iterations=iterations,
        records=records,
        total_latency_s=float(totals.mean()),
        total_latency_std_s=float(totals.std()) / math.sqrt(max(iterations, 1)),
        gpu_energy_j=baseline.gpu_energy_j * scale,
        cpu_energy_j=baseline.cpu_energy_j * scale,
        peak_memory_bytes=memory.peak_total_bytes,
        num_graph_ops=len(graph.compute_nodes()),
        num_kernels=plan.num_kernels,
        non_gemm_fusion_rate=plan.non_gemm_fusion_rate(),
    )
