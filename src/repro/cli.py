"""Command-line interface: ``nongemm-bench`` (or ``python -m repro.cli``).

Subcommands mirror the paper artifact's scripts:

* ``list-models``            — show the model registry (Table II).
* ``profile``                — profile one model on a platform/flow.
* ``experiment <name>``      — regenerate a figure/table (fig1..fig9, table1/4/5).
* ``sweep``                  — run a custom cross-product grid through the
  sweep engine (memoized builds/plans, vectorized simulation, optional
  process parallelism).
* ``inspect <model>``        — dump a lowered execution plan with per-pass
  provenance (which pass fused/placed/refined each kernel).
* ``workload <model>``       — static workload report (op mix, params).
* ``serve <model>``          — discrete-event serving simulation under load
  (``--list-schedulers`` discovers the batching policies).
* ``cluster <model>``        — fault-tolerant multi-replica serving: N
  replicas behind an admission policy with fault injection, retries,
  hedging, and admission control (``--list-policies``/``--list-faults``).
* ``platforms``              — list registered platforms, devices, links.
* ``cache info|clear|warm``  — manage the persistent artifact store
  (``REPRO_CACHE_DIR``) that makes fresh processes start warm.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import EXPERIMENTS
from repro.core import BenchConfig, NonGemmReport, PerformanceReport, run_bench
from repro.models import build_model, list_models
from repro.viz.ascii import render_stacked_bar, render_table
from repro.viz.csvout import write_csv


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    return args.handler(args)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nongemm-bench",
        description="NonGEMM Bench: operator-level GEMM/non-GEMM performance characterization",
    )
    sub = parser.add_subparsers(dest="command")

    p_list = sub.add_parser("list-models", help="show the model registry")
    p_list.set_defaults(handler=_cmd_list_models)

    p_prof = sub.add_parser("profile", help="profile one model")
    p_prof.add_argument("model")
    p_prof.add_argument("--flow", default="pytorch")
    p_prof.add_argument("--platform", default="A")
    p_prof.add_argument("--batch", type=int, default=1)
    p_prof.add_argument("--cpu-only", action="store_true")
    p_prof.add_argument("--iterations", type=int, default=5)
    p_prof.add_argument("--top", type=int, default=10, help="top-N slowest kernels to list")
    p_prof.add_argument("--csv", metavar="DIR", default=None, help="also write CSV here")
    p_prof.set_defaults(handler=_cmd_profile)

    p_exp = sub.add_parser("experiment", help="regenerate a paper figure/table")
    p_exp.add_argument("name", choices=sorted(EXPERIMENTS))
    p_exp.add_argument("--csv", metavar="DIR", default="results")
    p_exp.set_defaults(handler=_cmd_experiment)

    p_sweep = sub.add_parser("sweep", help="run a cross-product sweep via the sweep engine")
    p_sweep.add_argument(
        "--models", default="paper",
        help="comma-separated model names, or 'paper' for the paper's model set",
    )
    p_sweep.add_argument("--flows", default="pytorch", help="comma-separated flow names")
    p_sweep.add_argument("--platforms", default="A", help="comma-separated platform ids")
    p_sweep.add_argument("--batches", default="1", help="comma-separated batch sizes")
    p_sweep.add_argument(
        "--devices", default="gpu",
        help="comma-separated placement targets (cpu,gpu,npu)",
    )
    p_sweep.add_argument(
        "--seq-lens", default="", help="comma-separated sequence lengths (optional)"
    )
    p_sweep.add_argument(
        "--load", default="",
        help="comma-separated offered loads (fractions of single-stream"
        " capacity); each load point also runs the serving engine",
    )
    p_sweep.add_argument(
        "--scheduler", default="dynamic",
        help="batching scheduler for --load points",
    )
    p_sweep.add_argument("--iterations", type=int, default=3)
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument(
        "--workers", type=int, default=0,
        help="process-parallel workers (0/1 = in-process with shared caches)",
    )
    p_sweep.add_argument("--csv", metavar="DIR", default=None, help="also write CSV here")
    p_sweep.set_defaults(handler=_cmd_sweep)

    p_ins = sub.add_parser(
        "inspect", help="dump a lowered plan with per-pass provenance"
    )
    p_ins.add_argument("model")
    p_ins.add_argument("--flow", default="pytorch")
    p_ins.add_argument("--batch", type=int, default=1)
    p_ins.add_argument("--cpu-only", action="store_true")
    p_ins.add_argument("--seq-len", type=int, default=None)
    p_ins.add_argument(
        "--kernels", type=int, default=16,
        help="kernel rows to print (largest by traffic; 0 = all)",
    )
    p_ins.set_defaults(handler=_cmd_inspect)

    p_work = sub.add_parser("workload", help="static workload/non-GEMM report for a model")
    p_work.add_argument("model")
    p_work.add_argument("--batch", type=int, default=1)
    p_work.set_defaults(handler=_cmd_workload)

    p_serve = sub.add_parser(
        "serve", help="simulate serving a model under load (discrete-event engine)"
    )
    p_serve.add_argument(
        "model", nargs="?", default=None,
        help="model to serve (omit with --list-schedulers)",
    )
    p_serve.add_argument("--flow", default="pytorch")
    p_serve.add_argument("--platform", default="A")
    p_serve.add_argument(
        "--device", default="gpu", help="placement target (cpu/gpu/npu)"
    )
    p_serve.add_argument("--scheduler", default="dynamic")
    p_serve.add_argument(
        "--trace", default="poisson",
        help="arrival process (poisson, bursty, closed-loop)",
    )
    p_serve.add_argument(
        "--load", type=float, default=1.0,
        help="offered load as a fraction of single-stream capacity",
    )
    p_serve.add_argument(
        "--rate", type=float, default=None,
        help="explicit arrival rate in requests/s (overrides --load)",
    )
    p_serve.add_argument(
        "--num-requests", "--requests", dest="requests", type=int, default=32,
        help="trace length in requests (--requests is an alias)",
    )
    p_serve.add_argument(
        "--backend", choices=("fast", "reference"), default="fast",
        help="columnar fast backend or the scalar reference loop"
        " (bit-identical results)",
    )
    p_serve.add_argument(
        "--record-requests", type=int, default=None,
        help="cap materialized per-request records (streaming percentiles +"
        " a seeded uniform sample); default keeps everything",
    )
    p_serve.add_argument("--max-batch", type=int, default=8)
    p_serve.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="dynamic batching max wait before a partial batch launches",
    )
    p_serve.add_argument(
        "--decode-steps", default="1",
        help="decode iterations per request: a count, or an inclusive"
        " 'lo:hi' range drawn per request from the seeded generator",
    )
    p_serve.add_argument("--seq-len", type=int, default=None)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--list-schedulers", action="store_true",
        help="list registered batching schedulers and exit",
    )
    p_serve.add_argument(
        "--list-traces", action="store_true",
        help="list registered arrival processes and exit",
    )
    p_serve.set_defaults(handler=_cmd_serve)

    p_cluster = sub.add_parser(
        "cluster",
        help="simulate a fault-tolerant multi-replica serving cluster",
    )
    p_cluster.add_argument(
        "model", nargs="?", default=None,
        help="model to serve (omit with --list-policies/--list-faults)",
    )
    p_cluster.add_argument("--flow", default="pytorch")
    p_cluster.add_argument(
        "--platform", default="A",
        help="platform id for every replica (see --platforms for a mix)",
    )
    p_cluster.add_argument(
        "--platforms", default=None,
        help="comma-separated per-replica platform ids (overrides"
        " --platform/--replicas; one replica per entry)",
    )
    p_cluster.add_argument("--replicas", type=int, default=2)
    p_cluster.add_argument(
        "--device", default="gpu", help="placement target (cpu/gpu/npu)"
    )
    p_cluster.add_argument("--scheduler", default="dynamic")
    p_cluster.add_argument(
        "--policy", default="least-loaded",
        help="admission policy routing requests to replicas",
    )
    p_cluster.add_argument(
        "--fault", default="none",
        help="fault profile injected into the fleet (see --list-faults)",
    )
    p_cluster.add_argument("--fault-seed", type=int, default=0)
    p_cluster.add_argument(
        "--trace", default="poisson",
        help="arrival process (poisson, bursty, closed-loop)",
    )
    p_cluster.add_argument(
        "--load", default="1.0",
        help="offered load as a fraction of fleet capacity; a comma-separated"
        " list sweeps every load through the sweep runner (see --workers)",
    )
    p_cluster.add_argument(
        "--rate", type=float, default=None,
        help="explicit arrival rate in requests/s (overrides a single --load)",
    )
    p_cluster.add_argument(
        "--workers", type=int, default=0,
        help="process-pool size for multi-load sweeps (0/1 = in-process)",
    )
    p_cluster.add_argument(
        "--num-requests", "--requests", dest="requests", type=int, default=32,
        help="trace length in requests (--requests is an alias)",
    )
    p_cluster.add_argument(
        "--backend", choices=("fast", "reference"), default="fast",
        help="chunked-arrival fast backend or the per-event reference loop"
        " (bit-identical results)",
    )
    p_cluster.add_argument(
        "--record-requests", type=int, default=None,
        help="cap materialized records, cluster-level and per-replica"
        " (streaming percentiles + a seeded uniform sample)",
    )
    p_cluster.add_argument("--max-batch", type=int, default=8)
    p_cluster.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="dynamic batching max wait before a partial batch launches",
    )
    p_cluster.add_argument(
        "--decode-steps", default="1",
        help="decode iterations per request: a count, or an inclusive"
        " 'lo:hi' range drawn per request from the seeded generator",
    )
    p_cluster.add_argument(
        "--timeout-ms", type=float, default=None,
        help="per-request timeout before a copy is re-routed (required for"
        " crash profiles; doubles per retry up to --timeout-cap-ms)",
    )
    p_cluster.add_argument("--retries", type=int, default=3)
    p_cluster.add_argument("--timeout-cap-ms", type=float, default=None)
    p_cluster.add_argument(
        "--hedge-ms", type=float, default=None,
        help="hedge a request to a second replica after this delay",
    )
    p_cluster.add_argument(
        "--shed-ms", type=float, default=None,
        help="shed arrivals whose estimated queue delay exceeds this",
    )
    p_cluster.add_argument(
        "--deadline-ms", type=float, default=None,
        help="goodput deadline (completions slower than this are not good)",
    )
    p_cluster.add_argument(
        "--autoscaler", default=None,
        help="elastic-fleet controller (see --list-autoscalers); the"
        " replica count becomes the provisioned ceiling",
    )
    p_cluster.add_argument(
        "--min-replicas", type=int, default=1,
        help="autoscale floor (replicas that always stay online)",
    )
    p_cluster.add_argument(
        "--scale-interval-ms", type=float, default=100.0,
        help="autoscale controller evaluation period",
    )
    p_cluster.add_argument(
        "--scale-cooldown-ms", type=float, default=0.0,
        help="minimum time between autoscale actions",
    )
    p_cluster.add_argument(
        "--provision-ms", type=float, default=100.0,
        help="cold-start delay before a scaled-up replica admits work",
    )
    p_cluster.add_argument(
        "--target-util", type=float, default=0.6,
        help="busy-fraction set-point for the target-utilization controller",
    )
    p_cluster.add_argument(
        "--slo-ms", type=float, default=None,
        help="latency SLO for the goodput controller (default: --deadline-ms)",
    )
    p_cluster.add_argument("--seq-len", type=int, default=None)
    p_cluster.add_argument("--seed", type=int, default=0)
    p_cluster.add_argument(
        "--list-policies", action="store_true",
        help="list registered admission policies and exit",
    )
    p_cluster.add_argument(
        "--list-faults", action="store_true",
        help="list registered fault profiles and exit",
    )
    p_cluster.add_argument(
        "--list-autoscalers", action="store_true",
        help="list registered autoscale controllers and exit",
    )
    p_cluster.add_argument(
        "--list-traces", action="store_true",
        help="list registered arrival processes and exit",
    )
    p_cluster.set_defaults(handler=_cmd_cluster)

    p_plat = sub.add_parser(
        "platforms", help="list registered platforms, their devices and links"
    )
    p_plat.set_defaults(handler=_cmd_platforms)

    p_cache = sub.add_parser(
        "cache", help="inspect or manage the persistent artifact store"
    )
    p_cache.add_argument(
        "action", choices=("info", "clear", "warm"),
        help="info: show store state; clear: delete all entries;"
        " warm: pre-populate by running every figure/table harness",
    )
    p_cache.set_defaults(handler=_cmd_cache)

    return parser


def _cmd_list_models(args: argparse.Namespace) -> int:
    rows = [
        {
            "model": e.name,
            "domain": e.domain.value,
            "dataset": e.dataset,
            "paper_params": e.paper_params,
        }
        for e in list_models()
    ]
    print(render_table(rows))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    config = BenchConfig(
        models=(args.model,),
        batch_sizes=(args.batch,),
        flow=args.flow,
        platform=args.platform,
        use_gpu=not args.cpu_only,
        iterations=args.iterations,
    )
    results = run_bench(config)
    profile = results.profiles[0]
    report = PerformanceReport(profile)
    print(render_table([report.summary_row()]))
    print()
    print(render_table(report.breakdown_rows()))
    print()
    shares = {g.value: s for g, s in profile.share_by_group().items()}
    print(render_stacked_bar(profile.model, shares, total_label=f"{profile.total_latency_ms:.2f} ms"))
    print()
    print("slowest kernels:")
    print(render_table(report.top_operator_rows(args.top)))
    if args.csv:
        path = write_csv(report.breakdown_rows(), f"profile_{args.model}", args.csv)
        print(f"\nwrote {path}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    runner = EXPERIMENTS[args.name]
    result = runner()
    print(result.render())
    path = result.save(args.csv)
    print(f"\nwrote {path}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.models import PAPER_MODELS
    from repro.sweep.runner import SweepRunner
    from repro.sweep.spec import SweepSpec

    def split(raw: str) -> tuple[str, ...]:
        return tuple(part.strip() for part in raw.split(",") if part.strip())

    models = tuple(PAPER_MODELS) if args.models == "paper" else split(args.models)
    seq_lens: tuple[int | None, ...] = (None,)
    if args.seq_lens:
        seq_lens = tuple(int(s) for s in split(args.seq_lens))
    loads: tuple[float | None, ...] = (None,)
    if args.load:
        loads = tuple(float(v) for v in split(args.load))
    spec = SweepSpec(
        models=models,
        platforms=split(args.platforms),
        flows=split(args.flows),
        batch_sizes=tuple(int(b) for b in split(args.batches)),
        devices=split(args.devices),
        seq_lens=seq_lens,
        loads=loads,
        scheduler=args.scheduler,
        iterations=args.iterations,
        seed=args.seed,
        name="cli-sweep",
    )
    result = SweepRunner(workers=args.workers).run(spec)
    rows = []
    for record in result.records:
        point, profile = record.point, record.profile
        row: dict[str, object] = {
            "model": point.model,
            "flow": point.flow,
            "platform": point.platform,
            "batch": point.batch_size,
            "device": point.device,
        }
        if point.seq_len is not None:
            row["seq_len"] = point.seq_len
        row.update(
            {
                "latency_ms": round(profile.total_latency_ms, 3),
                "gemm_pct": round(100 * profile.gemm_share, 1),
                "non_gemm_pct": round(100 * profile.non_gemm_share, 1),
                "gpu_energy_j": round(profile.gpu_energy_j, 3),
            }
        )
        if record.serving is not None:
            serving = record.serving
            row.update(
                {
                    "load": point.load,
                    "scheduler": point.scheduler,
                    "served_rps": round(serving.throughput_rps, 2),
                    "p99_ms": round(serving.p99_s * 1e3, 3),
                }
            )
        rows.append(row)
    print(render_table(rows))
    hits = sum(result.cache_info.get("hits", {}).values())
    disk_hits = sum(result.cache_info.get("disk_hits", {}).values())
    misses = sum(result.cache_info.get("misses", {}).values())
    # pool runs (--workers > 1) sum the deltas each worker ships back with
    # its records, so these counters cover every per-process cache.
    print(
        f"\n{len(result.records)} points in {result.wall_s:.2f}s"
        f" (cache: {hits} hits, {disk_hits} disk hits, {misses} misses)"
    )
    if args.csv:
        path = write_csv(rows, "sweep", args.csv)
        print(f"wrote {path}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.flows import get_flow

    flow = get_flow(args.flow)
    overrides = {} if args.seq_len is None else {"seq_len": args.seq_len}
    graph = build_model(args.model, batch_size=args.batch, **overrides)
    plan = flow.lower(graph, use_gpu=not args.cpu_only, record_provenance=True)

    print(f"plan: {args.model} via {flow.name} ({plan.num_kernels} kernels,")
    print(f"      {plan.num_fused_kernels} fused, dispatch={plan.dispatch_profile})")
    print(f"pipeline signature: {plan.notes['pipeline_signature']}")
    print()
    print("pass pipeline:")
    pass_rows = []
    for entry in plan.notes["passes"]:
        entry = dict(entry)
        name = entry.pop("pass")
        summary = ", ".join(f"{k}={v}" for k, v in entry.items())
        pass_rows.append({"pass": name, "effect": summary or "-"})
    print(render_table(pass_rows))
    print()

    provenance = plan.notes["kernel_provenance"]
    indexed = list(zip(plan.kernels, provenance))
    if args.kernels:
        indexed.sort(key=lambda pair: pair[0].cost.total_bytes, reverse=True)
        indexed = indexed[: args.kernels]
        print(f"top {len(indexed)} kernels by traffic:")
    else:
        print("kernels (plan order):")
    kernel_rows = []
    for kernel, tags in indexed:
        kernel_rows.append(
            {
                "kernel": kernel.name,
                "ops": len(kernel.node_ids),
                "category": kernel.category.value,
                "device": kernel.device.value,
                "launches": kernel.launch_count,
                "bytes": kernel.cost.total_bytes,
                "transfer": kernel.transfer_bytes_in + kernel.transfer_bytes_out,
                "provenance": "; ".join(tags) or "-",
            }
        )
    print(render_table(kernel_rows))
    return 0


def _parse_decode_steps(raw: str) -> "int | tuple[int, int]":
    """A count, or an inclusive ``lo:hi`` range drawn per request."""
    if ":" in raw:
        lo, hi = raw.split(":", 1)
        return (int(lo), int(hi))
    return int(raw)


def _cmd_serve(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.serving import (
        ServingConfig,
        ServingEngine,
        make_trace,
        scheduler_entries,
        trace_entries,
    )

    if args.list_schedulers or args.list_traces:
        if args.list_schedulers:
            print(
                render_table(
                    [
                        {"scheduler": name, "policy": description}
                        for name, description in scheduler_entries()
                    ]
                )
            )
        if args.list_traces:
            if args.list_schedulers:
                print()
            print(
                render_table(
                    [
                        {"trace": name, "arrival process": description}
                        for name, description in trace_entries()
                    ]
                )
            )
        return 0
    if args.model is None:
        print(
            "error: a model is required unless --list-schedulers/--list-traces"
            " is given"
        )
        return 2

    decode_steps = _parse_decode_steps(args.decode_steps)

    engine = ServingEngine(
        ServingConfig(
            model=args.model,
            flow=args.flow,
            platform=args.platform,
            device=args.device,
            scheduler=args.scheduler,
            max_batch=args.max_batch,
            max_wait_s=args.max_wait_ms * 1e-3,
            seq_len=args.seq_len,
            backend=args.backend,
            record_requests=args.record_requests,
        )
    )
    base_s = engine.base_latency_s()
    rate = args.rate if args.rate is not None else args.load / base_s
    trace = make_trace(
        args.trace,
        rate,
        args.requests,
        rng=np.random.default_rng(args.seed),
        decode_steps=decode_steps,
    )
    result = engine.run(trace, offered_rate_rps=rate)
    utilization = result.utilization()
    print(result.describe())
    print()
    print(
        render_table(
            [
                {
                    "requests": result.num_requests_served,
                    "backend": result.backend_used or args.backend,
                    "offered_rps": round(result.offered_rate_rps, 2),
                    "served_rps": round(result.throughput_rps, 2),
                    "p50_ms": round(result.p50_s * 1e3, 3),
                    "p95_ms": round(result.p95_s * 1e3, 3),
                    "p99_ms": round(result.p99_s * 1e3, 3),
                    "mean_queue_ms": round(result.mean_queue_s * 1e3, 3),
                    "mean_batch": round(result.mean_batch_size, 2),
                    "max_depth": result.max_queue_depth,
                    "non_gemm_busy_pct": round(100 * result.non_gemm_busy_share, 1),
                }
            ]
        )
    )
    if result.fast_path_fallback_reason is not None:
        print(
            "note: fast path fell back to the reference loop:"
            f" {result.fast_path_fallback_reason}"
        )
    print()
    print("device occupancy:")
    print(
        render_table(
            [
                {
                    "device": kind.value,
                    "busy_ms": round(busy * 1e3, 3),
                    "utilization_pct": round(100 * utilization.get(kind, 0.0), 1),
                    "energy_j": round(result.energy_j.get(kind, 0.0), 3),
                }
                for kind, busy in result.busy_s.items()
            ]
        )
    )
    print(
        f"\nbatch-1 latency {base_s * 1e3:.3f} ms"
        f" ({1.0 / base_s:.1f} rps single-stream capacity)"
    )
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.serving import (
        AutoscaleConfig,
        ClusterConfig,
        ClusterRouter,
        autoscaler_entries,
        fault_profile_entries,
        make_trace,
        policy_entries,
        trace_entries,
    )

    if (
        args.list_policies
        or args.list_faults
        or args.list_autoscalers
        or args.list_traces
    ):
        tables = []
        if args.list_policies:
            tables.append(
                [
                    {"policy": name, "strategy": description}
                    for name, description in policy_entries()
                ]
            )
        if args.list_faults:
            tables.append(
                [
                    {"profile": name, "faults": description}
                    for name, description in fault_profile_entries()
                ]
            )
        if args.list_autoscalers:
            tables.append(
                [
                    {"autoscaler": name, "control law": description}
                    for name, description in autoscaler_entries()
                ]
            )
        if args.list_traces:
            tables.append(
                [
                    {"trace": name, "arrivals": description}
                    for name, description in trace_entries()
                ]
            )
        print("\n\n".join(render_table(rows) for rows in tables))
        return 0
    if args.model is None:
        print(
            "error: a model is required unless a --list-* discovery flag"
            " is given"
        )
        return 2

    loads = tuple(float(part) for part in str(args.load).split(",") if part.strip())
    if len(loads) > 1:
        return _cluster_sweep(args, loads)
    load = loads[0] if loads else 1.0

    if args.platforms:
        platforms = tuple(
            part.strip() for part in args.platforms.split(",") if part.strip()
        )
    else:
        platforms = (args.platform,) * args.replicas

    def ms(value: float | None) -> float | None:
        return None if value is None else value * 1e-3

    autoscale = None
    if args.autoscaler is not None:
        autoscale = AutoscaleConfig(
            controller=args.autoscaler,
            min_replicas=args.min_replicas,
            max_replicas=len(platforms),
            interval_s=args.scale_interval_ms * 1e-3,
            cooldown_s=args.scale_cooldown_ms * 1e-3,
            provision_delay_s=args.provision_ms * 1e-3,
            target_utilization=args.target_util,
            slo_s=ms(args.slo_ms),
        )

    router = ClusterRouter(
        ClusterConfig(
            model=args.model,
            flow=args.flow,
            platforms=platforms,
            device=args.device,
            scheduler=args.scheduler,
            policy=args.policy,
            max_batch=args.max_batch,
            max_wait_s=args.max_wait_ms * 1e-3,
            seq_len=args.seq_len,
            fault_profile=args.fault,
            fault_seed=args.fault_seed,
            timeout_s=ms(args.timeout_ms),
            max_retries=args.retries,
            timeout_cap_s=ms(args.timeout_cap_ms),
            hedge_after_s=ms(args.hedge_ms),
            shed_queue_s=ms(args.shed_ms),
            deadline_s=ms(args.deadline_ms),
            backend=args.backend,
            record_requests=args.record_requests,
            autoscale=autoscale,
        )
    )
    capacity = router.fleet_capacity_rps()
    rate = args.rate if args.rate is not None else load * capacity
    trace = make_trace(
        args.trace,
        rate,
        args.requests,
        rng=np.random.default_rng(args.seed),
        decode_steps=_parse_decode_steps(args.decode_steps),
    )
    result = router.run(trace, offered_rate_rps=rate)
    print(result.describe())
    print()
    print(
        render_table(
            [
                {
                    "requests": (
                        result.num_requests_total
                        if result.num_requests_total is not None
                        else len(result.records)
                    ),
                    "backend": result.backend_used or args.backend,
                    "offered_rps": round(result.offered_rate_rps, 2),
                    "served_rps": round(result.throughput_rps, 2),
                    "goodput_pct": round(100 * result.goodput, 1),
                    "p50_ms": round(result.p50_s * 1e3, 3),
                    "p99_ms": round(result.p99_s * 1e3, 3),
                    "shed": result.num_shed,
                    "failed": result.num_failed,
                    "retries": result.num_retries,
                    "hedges": result.num_hedges,
                    "hedge_wins": result.num_hedge_wins,
                    "recovery_ms": round(result.time_to_recovery_s * 1e3, 3),
                }
            ]
        )
    )
    if result.fast_path_fallback_reason is not None:
        print(
            "note: fast path fell back to the reference loop:"
            f" {result.fast_path_fallback_reason}"
        )
    if autoscale is not None:
        print()
        print(
            f"autoscale: {autoscale.controller}"
            f" [{autoscale.min_replicas},{autoscale.max_replicas}]"
            f" mean_replicas={result.mean_replicas:.2f}"
            f" replica_seconds={result.replica_seconds:.2f}"
            f" scale_events={len(result.scale_events)}"
        )
        for event in result.scale_events[:20]:
            print(
                f"  t={event.time_s:8.3f}s {event.action:<8}"
                f" replica={event.replica} serving={event.serving}"
                f"  ({event.reason})"
            )
        if len(result.scale_events) > 20:
            print(f"  ... {len(result.scale_events) - 20} more events")
    print()
    print("per-replica occupancy (of the cluster makespan):")
    replica_rows = []
    for index, (replica, utilization) in enumerate(
        zip(result.replicas, result.utilization())
    ):
        replica_rows.append(
            {
                "replica": index,
                "platform": result.platform_ids[index],
                "completed": replica.num_requests_served,
                "dispatches": replica.num_dispatches,
                "utilization_pct": " + ".join(
                    f"{kind.value} {100 * share:.1f}%"
                    for kind, share in utilization.items()
                ),
                "energy_j": round(sum(replica.energy_j.values()), 3),
            }
        )
    print(render_table(replica_rows))
    print(f"\nfleet capacity {capacity:.1f} rps across {len(platforms)} replicas")
    return 0


def _cluster_sweep(args: argparse.Namespace, loads: tuple[float, ...]) -> int:
    """Serve one cluster configuration at several loads through the sweep
    runner — optionally fanned out over a worker pool (``--workers``)."""
    from repro.sweep.runner import SweepRunner
    from repro.sweep.spec import SweepSpec

    if args.rate is not None:
        print("error: --rate fixes one arrival rate; use a single --load with it")
        return 2
    if args.platforms:
        print(
            "error: multi-load sweeps replicate --platform across the fleet;"
            " --platforms mixes are single-load only"
        )
        return 2
    if args.retries != 3:
        print("error: multi-load sweeps use the default retry budget (3)")
        return 2

    def ms(value: float | None) -> float | None:
        return None if value is None else value * 1e-3

    steps = _parse_decode_steps(args.decode_steps)
    if isinstance(steps, int):
        steps = (steps, steps)
    spec = SweepSpec(
        name="cli-cluster",
        models=(args.model,),
        platforms=(args.platform,),
        flows=(args.flow,),
        devices=(args.device,),
        seq_lens=(args.seq_len,),
        loads=loads,
        policies=(args.policy,),
        fault_profiles=(args.fault,),
        scheduler=args.scheduler,
        trace=args.trace,
        num_requests=args.requests,
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms * 1e-3,
        decode_steps=steps,
        num_replicas=args.replicas,
        fault_seed=args.fault_seed,
        timeout_s=ms(args.timeout_ms),
        timeout_cap_s=ms(args.timeout_cap_ms),
        hedge_after_s=ms(args.hedge_ms),
        shed_queue_s=ms(args.shed_ms),
        deadline_s=ms(args.deadline_ms),
        backend=args.backend,
        record_requests=args.record_requests,
        autoscalers=(args.autoscaler,),
        autoscale_min_replicas=args.min_replicas,
        autoscale_interval_s=args.scale_interval_ms * 1e-3,
        autoscale_cooldown_s=args.scale_cooldown_ms * 1e-3,
        autoscale_provision_s=args.provision_ms * 1e-3,
        autoscale_target=args.target_util,
        autoscale_slo_s=ms(args.slo_ms),
        seed=args.seed,
    )
    result = SweepRunner(workers=args.workers).run(spec)
    rows = []
    for record in result.records:
        cluster = record.serving
        row = {
            "load": record.point.load,
            "offered_rps": round(cluster.offered_rate_rps, 2),
            "served_rps": round(cluster.throughput_rps, 2),
            "goodput_pct": round(100 * cluster.goodput, 1),
            "p50_ms": round(cluster.p50_s * 1e3, 3),
            "p99_ms": round(cluster.p99_s * 1e3, 3),
            "shed": cluster.num_shed,
            "failed": cluster.num_failed,
            "retries": cluster.num_retries,
        }
        if args.autoscaler is not None:
            row["mean_repl"] = round(cluster.mean_replicas, 2)
            row["repl_s"] = round(cluster.replica_seconds, 2)
            row["scale_ev"] = len(cluster.scale_events)
        rows.append(row)
    print(render_table(rows))
    hits = sum(result.cache_info.get("hits", {}).values())
    disk_hits = sum(result.cache_info.get("disk_hits", {}).values())
    misses = sum(result.cache_info.get("misses", {}).values())
    print(
        f"\n{len(result.records)} loads x {args.replicas} replicas in"
        f" {result.wall_s:.2f}s (cache: {hits} hits, {disk_hits} disk hits,"
        f" {misses} misses)"
    )
    return 0


def _cmd_platforms(args: argparse.Namespace) -> int:
    from repro.hardware import list_platforms

    platforms = list_platforms()
    print(
        render_table(
            [
                {
                    "platform": p.platform_id,
                    "description": p.description,
                    "devices": " + ".join(
                        f"{spec.kind.value}:{spec.name}" for spec in p.devices
                    ),
                }
                for p in platforms
            ]
        )
    )
    link_rows = []
    for p in platforms:
        for (src, dst), link in sorted(
            p.links.items(), key=lambda item: (item[0][0].value, item[0][1].value)
        ):
            link_rows.append(
                {
                    "platform": p.platform_id,
                    "link": f"{src.value} -> {dst.value}",
                    "bandwidth_gbs": round(link.bandwidth / 1e9, 1),
                    "latency_us": round(link.latency_s * 1e6, 1),
                }
            )
        link_rows.append(
            {
                "platform": p.platform_id,
                "link": "(default host link)",
                "bandwidth_gbs": round(p.pcie_bandwidth / 1e9, 1),
                "latency_us": round(p.pcie_latency_s * 1e6, 1),
            }
        )
    print()
    print("interconnect links (unlisted pairs use the default host link):")
    print(render_table(link_rows))
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    graph = build_model(args.model, batch_size=args.batch)
    report = NonGemmReport(graph)
    from repro.core import WorkloadReport

    workload = WorkloadReport(graph)
    print(render_table([workload.summary_row()]))
    print()
    print("operator counts:")
    print(render_table(workload.op_count_rows()))
    print()
    print("non-GEMM variants:")
    print(render_table(report.variant_rows()))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import time

    from repro.sweep.cache import PLAN_CACHE

    store = PLAN_CACHE.store
    if store is None:
        print(
            "persistent artifact store disabled"
            " (REPRO_CACHE_DIR is set to 0/off/empty)"
        )
        return 0 if args.action == "info" else 2

    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} entries from {store.directory}")
        return 0

    if args.action == "warm":
        started = time.perf_counter()
        for name in sorted(EXPERIMENTS):
            step = time.perf_counter()
            EXPERIMENTS[name]()
            print(f"  {name}: {time.perf_counter() - step:.2f}s")
        print(f"warmed in {time.perf_counter() - started:.2f}s")

    info = store.info()
    print(
        render_table(
            [
                {
                    "directory": info.directory,
                    "schema": f"v{info.schema_version}",
                    "code": info.fingerprint[:12],
                    "entries": info.entries,
                    "size_mb": round(info.total_bytes / 1e6, 1),
                    "cap_mb": round(info.max_bytes / 1e6, 1),
                }
            ]
        )
    )
    if info.entries_by_kind:
        print()
        print(
            render_table(
                [{"kind": k, "entries": v} for k, v in info.entries_by_kind.items()]
            )
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
