"""Runtime: concrete execution, latency simulation, memory profiling."""

from repro.runtime.executor import GraphExecutor, run_graph
from repro.runtime.memory import MemoryProfile, profile_memory
from repro.runtime.simulator import KernelRecord, SimulationResult, simulate

__all__ = [
    "GraphExecutor",
    "KernelRecord",
    "MemoryProfile",
    "SimulationResult",
    "profile_memory",
    "run_graph",
    "simulate",
]
