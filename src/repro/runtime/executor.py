"""Concrete numpy execution of operator graphs.

Used by tests and examples to validate operator and model semantics on small
configurations.  Weights are materialized lazily from a seeded RNG (the
benchmark characterizes performance, not accuracy, so random weights with
sane statistics suffice), and intermediate tensors are freed as soon as
their last consumer has run.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.errors import ExecutionError
from repro.ir.dtype import DType
from repro.ir.graph import Graph
from repro.ir.node import Node
from repro.ops.base import WeightSpec


class GraphExecutor:
    """Executes a graph with randomly-initialized weights."""

    def __init__(self, graph: Graph, seed: int = 0):
        graph.validate()
        self.graph = graph
        self.seed = seed
        self._weight_cache: dict[tuple[int, str], np.ndarray] = {}

    def run(self, inputs: dict[str, np.ndarray]) -> list[np.ndarray]:
        """Execute the graph on named inputs; returns the output tensors."""
        values: dict[tuple[int, int], np.ndarray] = {}
        remaining = self._use_counts()

        for node in self.graph.nodes:
            if node.is_placeholder:
                values[(node.node_id, 0)] = self._fetch_input(node, inputs)
                continue
            args = [values[(v.node_id, v.port)] for v in node.inputs]
            weights = self.weights_for(node)
            try:
                outputs = node.op.run(args, weights)
            except Exception as exc:  # noqa: BLE001 - annotate and re-raise
                raise ExecutionError(f"node {node.qualified_name} ({node.op!r}) failed: {exc}") from exc
            if len(outputs) != len(node.outputs):
                raise ExecutionError(
                    f"node {node.qualified_name} produced {len(outputs)} outputs,"
                    f" expected {len(node.outputs)}"
                )
            for port, (array, spec) in enumerate(zip(outputs, node.outputs)):
                if tuple(array.shape) != spec.shape:
                    raise ExecutionError(
                        f"node {node.qualified_name} port {port}: shape {array.shape}"
                        f" disagrees with inferred {spec.shape}"
                    )
                values[(node.node_id, port)] = array
            # free tensors whose consumers have all run
            for value in node.inputs:
                key = (value.node_id, value.port)
                remaining[key] -= 1
                if remaining[key] == 0 and key in values:
                    del values[key]

        try:
            return [values[(v.node_id, v.port)] for v in self.graph.outputs]
        except KeyError as exc:
            raise ExecutionError(f"graph output {exc} was freed or never produced") from exc

    def weights_for(self, node: Node) -> dict[str, np.ndarray]:
        """Materialize (and cache) the node's weights from the seeded RNG."""
        weights: dict[str, np.ndarray] = {}
        for spec in node.op.weight_specs():
            key = (node.node_id, spec.name)
            if key not in self._weight_cache:
                self._weight_cache[key] = self._init_weight(node.node_id, spec)
            weights[spec.name] = self._weight_cache[key]
        return weights

    def _init_weight(self, node_id: int, spec: WeightSpec) -> np.ndarray:
        rng = np.random.default_rng((self.seed * 1_000_003 + node_id) & 0x7FFFFFFF)
        np_dtype = spec.dtype.to_numpy()
        if spec.dtype == DType.I8:
            return rng.integers(-16, 16, size=spec.shape, dtype=np.int8)
        if spec.dtype.is_integer:
            return rng.integers(0, 4, size=spec.shape).astype(np_dtype)
        scale = 0.02
        data = rng.normal(0.0, scale, size=spec.shape)
        if spec.name in ("running_var",):
            data = np.abs(data) + 1.0
        if spec.name in ("weight",) and len(spec.shape) == 1:
            # norm scale parameters initialise near 1
            data = 1.0 + data
        return data.astype(np_dtype)

    def _fetch_input(self, node: Node, inputs: dict[str, np.ndarray]) -> np.ndarray:
        spec = node.outputs[0]
        if node.name not in inputs:
            raise ExecutionError(
                f"missing graph input {node.name!r}; provided: {sorted(inputs)}"
            )
        array = np.asarray(inputs[node.name])
        if tuple(array.shape) != spec.shape:
            raise ExecutionError(
                f"input {node.name!r} has shape {array.shape}, expected {spec.shape}"
            )
        return array.astype(spec.dtype.to_numpy(), copy=False)

    def _use_counts(self) -> Counter[tuple[int, int]]:
        counts: Counter[tuple[int, int]] = Counter()
        for node in self.graph.nodes:
            for value in node.inputs:
                counts[(value.node_id, value.port)] += 1
        for value in self.graph.outputs:
            counts[(value.node_id, value.port)] += 1
        return counts


def run_graph(graph: Graph, inputs: dict[str, np.ndarray], seed: int = 0) -> list[np.ndarray]:
    """One-shot convenience wrapper around :class:`GraphExecutor`."""
    return GraphExecutor(graph, seed=seed).run(inputs)
