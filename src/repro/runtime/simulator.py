"""Latency and energy simulation of execution plans.

Walks a lowered :class:`~repro.flows.plan.ExecutionPlan` on a
:class:`~repro.hardware.platform.Platform`, estimating each kernel with the
roofline cost model, adding interconnect transfers for kernels forced off the
plan's target device, and integrating the power model for energy.

The hardware model is N-device: kernels carry a :class:`DeviceKind`, the
platform contributes one parameter table per device kind plus a directed
link table, and energy is accounted per device.  Transfers are priced on the
link between the kernel's device and its *peer* — the plan's target device
for host kernels (fallback ops pull operands off the accelerator), the host
CPU for accelerator kernels (sync readbacks) — which reduces to the historic
single PCIe hop on two-device platforms.

Two implementations produce bit-identical results:

* :func:`simulate` — the production path.  It lifts the plan into per-kernel
  numpy arrays (built once per plan and cached on it) and estimates every
  kernel in one :func:`~repro.hardware.cost_model.estimate_kernels_batch`
  call, so a 10k-kernel plan costs a handful of array operations instead of
  10k Python-level roofline evaluations.
* :func:`simulate_reference` — the original kernel-by-kernel loop over the
  scalar :func:`~repro.hardware.cost_model.estimate_kernel`.  It is kept as
  the executable specification; the equivalence tests assert the vectorized
  path matches it exactly on every registered platform.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import RegistryError
from repro.flows.plan import ExecutionPlan, PlannedKernel
from repro.hardware.calibration import (
    FALLBACK_SYNC_S,
    DispatchProfile,
    dispatch_profile,
    efficiency_for_kind,
)
from repro.hardware.cost_model import (
    BatchEstimates,
    LatencyEstimate,
    estimate_kernel,
    estimate_kernels_batch,
)
from repro.hardware.device import DeviceKind, DeviceSpec
from repro.hardware.energy import EnergyAccumulator
from repro.hardware.platform import Platform
from repro.ir.dtype import DType
from repro.ops.base import OpCategory

#: stable category order used to index the efficiency lookup tables.
_CATEGORIES = tuple(OpCategory)
_CATEGORY_INDEX = {category: i for i, category in enumerate(_CATEGORIES)}

#: stable device-kind order for the per-kind parameter tables and the plan
#: arrays' device column (rows: CPU, GPU, NPU — DeviceKind declaration order).
_DEVICE_KINDS = tuple(DeviceKind)
_KIND_INDEX = {kind: i for i, kind in enumerate(_DEVICE_KINDS)}

#: dtype codes for GEMM peak selection: f32 (TF32-scalable), f16/bf16, i8,
#: and "other" (falls back to the f32 pipe rate but never gets the TF32 scale).
_DTYPE_F32, _DTYPE_F16, _DTYPE_I8, _DTYPE_OTHER = 0, 1, 2, 3
_DTYPE_CODE = {
    DType.F32: _DTYPE_F32,
    DType.F16: _DTYPE_F16,
    DType.BF16: _DTYPE_F16,
    DType.I8: _DTYPE_I8,
}

#: attribute used to cache the platform-independent arrays on a plan.
_PLAN_ARRAYS_ATTR = "_simulator_arrays"

#: lazily-built efficiency lookup tables indexed [device_kind, category]; the
#: calibration data is static, so they are computed once per process.
_EFF_TABLES: tuple[np.ndarray, np.ndarray] | None = None

#: per-DispatchProfile [device_kind, is_metadata] overhead tables, keyed by
#: the (frozen, hashable) profile itself so replaced registry entries can
#: never alias a recycled object id.
_DISPATCH_TABLES: dict[DispatchProfile, np.ndarray] = {}


def _efficiency_tables() -> tuple[np.ndarray, np.ndarray]:
    global _EFF_TABLES
    if _EFF_TABLES is None:
        _EFF_TABLES = (
            np.array(
                [
                    [efficiency_for_kind(c, kind).compute for c in _CATEGORIES]
                    for kind in _DEVICE_KINDS
                ]
            ),
            np.array(
                [
                    [efficiency_for_kind(c, kind).memory for c in _CATEGORIES]
                    for kind in _DEVICE_KINDS
                ]
            ),
        )
    return _EFF_TABLES


def _dispatch_table(profile: DispatchProfile) -> np.ndarray:
    """[device_kind, metadata_only] dispatch overheads for one profile."""
    table = _DISPATCH_TABLES.get(profile)
    if table is None:
        table = np.array(
            [
                [profile.dispatch_for(kind, False), profile.dispatch_for(kind, True)]
                for kind in _DEVICE_KINDS
            ]
        )
        _DISPATCH_TABLES[profile] = table
    return table


@dataclass(frozen=True)
class KernelRecord:
    """Simulated timing of one planned kernel."""

    kernel: PlannedKernel
    estimate: LatencyEstimate
    transfer_s: float

    @property
    def latency_s(self) -> float:
        return self.estimate.total_s + self.transfer_s


@dataclass(frozen=True)
class PlanArrays:
    """Platform-independent per-kernel arrays lifted from a plan once."""

    category_idx: np.ndarray  # int index into _CATEGORIES
    device_idx: np.ndarray  # int index into _DEVICE_KINDS (kernel.device)
    is_gemm: np.ndarray
    flops: np.ndarray
    total_bytes: np.ndarray
    metadata_only: np.ndarray
    is_custom: np.ndarray
    launch_count: np.ndarray
    dtype_code: np.ndarray
    transfer_in: np.ndarray
    transfer_out: np.ndarray


def plan_arrays(plan: ExecutionPlan) -> PlanArrays:
    """The per-kernel array view of ``plan``, built once and cached on it."""
    cached = getattr(plan, _PLAN_ARRAYS_ATTR, None)
    if cached is not None:
        return cached
    gemm = OpCategory.GEMM
    kind_index = _KIND_INDEX
    columns = [
        (
            _CATEGORY_INDEX[k.category],
            kind_index[k.device],
            k.category is gemm,
            k.cost.flops,
            k.cost.total_bytes,
            k.metadata_only,
            k.is_custom,
            k.launch_count,
            _DTYPE_CODE.get(k.dtype, _DTYPE_OTHER),
            k.transfer_bytes_in,
            k.transfer_bytes_out,
        )
        for k in plan.kernels
    ]
    if columns:
        (cat, didx, is_gemm, flops, nbytes, meta, custom, launches, dcode,
         tin, tout) = zip(*columns)
    else:
        cat = didx = is_gemm = flops = nbytes = meta = custom = launches = dcode = tin = tout = ()
    arrays = PlanArrays(
        category_idx=np.array(cat, dtype=np.int64),
        device_idx=np.array(didx, dtype=np.int64),
        is_gemm=np.array(is_gemm, dtype=bool),
        flops=np.array(flops, dtype=np.float64),
        total_bytes=np.array(nbytes, dtype=np.float64),
        metadata_only=np.array(meta, dtype=bool),
        is_custom=np.array(custom, dtype=bool),
        launch_count=np.array(launches, dtype=np.float64),
        dtype_code=np.array(dcode, dtype=np.int64),
        transfer_in=np.array(tin, dtype=np.float64),
        transfer_out=np.array(tout, dtype=np.float64),
    )
    setattr(plan, _PLAN_ARRAYS_ATTR, arrays)
    return arrays


@dataclass(frozen=True)
class DeviceTables:
    """Per-device-kind simulation parameters of one platform.

    Every array has one row per :class:`DeviceKind`; rows for kinds the
    platform lacks hold inert fill values and are guarded by ``present`` —
    the simulator raises before ever gathering through an absent row.
    """

    present: np.ndarray  # bool: platform has a device of this kind
    is_gpu: np.ndarray  # bool: kind is GPU (gates the TF32 f32 scale)
    is_async: np.ndarray  # bool: dispatch overlaps device work
    gemm_peak: np.ndarray  # [kind, dtype_code] peak GEMM flops
    gemm_saturation: np.ndarray
    vector_flops: np.ndarray
    mem_bandwidth: np.ndarray
    kernel_launch_s: np.ndarray


def _device_tables(platform: Platform) -> DeviceTables:
    """``platform``'s per-kind parameter tables, built once and cached."""
    cache: dict = platform.__dict__.setdefault("_sim_tables", {})
    tables = cache.get("device")
    if tables is None:
        n = len(_DEVICE_KINDS)
        present = np.zeros(n, dtype=bool)
        is_gpu = np.zeros(n, dtype=bool)
        is_async = np.zeros(n, dtype=bool)
        gemm_peak = np.zeros((n, 4), dtype=np.float64)
        saturation = np.zeros(n, dtype=np.float64)
        vector = np.full(n, 1.0, dtype=np.float64)
        bandwidth = np.full(n, 1.0, dtype=np.float64)
        launch = np.zeros(n, dtype=np.float64)
        for spec in platform.devices:
            row = _KIND_INDEX[spec.kind]
            present[row] = True
            is_gpu[row] = spec.is_gpu
            is_async[row] = spec.async_dispatch
            gemm_peak[row] = (
                spec.gemm_flops_f32,
                spec.gemm_flops_f16,
                spec.gemm_flops_i8,
                spec.gemm_flops_f32,
            )
            saturation[row] = spec.gemm_saturation_flops
            vector[row] = spec.vector_flops
            bandwidth[row] = spec.mem_bandwidth
            launch[row] = spec.kernel_launch_s
        tables = DeviceTables(
            present=present,
            is_gpu=is_gpu,
            is_async=is_async,
            gemm_peak=gemm_peak,
            gemm_saturation=saturation,
            vector_flops=vector,
            mem_bandwidth=bandwidth,
            kernel_launch_s=launch,
        )
        cache["device"] = tables
    return tables


def _transfer_peer(target: DeviceKind, kind: DeviceKind) -> DeviceKind:
    """The other end of a kernel's transfers.

    Host kernels exchange data with the plan's target accelerator (fallback
    ops pull operands off it and push results back); accelerator kernels
    exchange with the host (sync readbacks).  On a CPU+GPU platform this is
    the historic single PCIe hop in both cases.
    """
    return target if kind is DeviceKind.CPU else DeviceKind.CPU


def _transfer_tables(platform: Platform, target: DeviceKind) -> np.ndarray:
    """[kind, 4] link parameters: in-latency, in-bandwidth (peer -> kind)
    and out-latency, out-bandwidth (kind -> peer).  Same-device rows price
    to zero (latency 0, infinite bandwidth)."""
    cache: dict = platform.__dict__.setdefault("_sim_tables", {})
    key = ("transfer", target)
    table = cache.get(key)
    if table is None:
        table = np.zeros((len(_DEVICE_KINDS), 4), dtype=np.float64)
        for row, kind in enumerate(_DEVICE_KINDS):
            peer = _transfer_peer(target, kind)
            inbound = platform.link(peer, kind)
            outbound = platform.link(kind, peer)
            table[row, 0] = 0.0 if inbound is None else inbound.latency_s
            table[row, 1] = np.inf if inbound is None else inbound.bandwidth
            table[row, 2] = 0.0 if outbound is None else outbound.latency_s
            table[row, 3] = np.inf if outbound is None else outbound.bandwidth
        cache[key] = table
    return table


class SimulationResult:
    """Timeline of one simulated inference.

    Energy is accounted per device: :attr:`energy_j` maps each of the
    platform's device kinds to joules; the historical ``gpu_energy_j`` /
    ``cpu_energy_j`` fields remain as read-only views into it.

    The vectorized simulator stores per-kernel latencies and bound labels as
    arrays; the :attr:`records` list of :class:`KernelRecord` objects is
    materialized lazily for callers that want the object view.
    """

    def __init__(
        self,
        plan: ExecutionPlan,
        platform: Platform,
        records: list[KernelRecord] | None = None,
        total_latency_s: float = 0.0,
        energy_j: dict[DeviceKind, float] | None = None,
        estimates: BatchEstimates | None = None,
        transfer_s: np.ndarray | None = None,
    ):
        self.plan = plan
        self.platform = platform
        self.total_latency_s = total_latency_s
        self.energy_j: dict[DeviceKind, float] = dict(energy_j or {})
        self._records = records
        self._estimates = estimates
        self._transfer_s = transfer_s
        self._latencies: np.ndarray | None = None

    @property
    def gpu_energy_j(self) -> float:
        return self.energy_j.get(DeviceKind.GPU, 0.0)

    @property
    def cpu_energy_j(self) -> float:
        return self.energy_j.get(DeviceKind.CPU, 0.0)

    @property
    def total_latency_ms(self) -> float:
        return self.total_latency_s * 1e3

    @property
    def estimates(self) -> BatchEstimates | None:
        """The vectorized per-kernel estimates (None for reference runs)."""
        return self._estimates

    @property
    def latencies(self) -> np.ndarray:
        """Per-kernel wall-clock latency (estimate + transfers), float64."""
        if self._latencies is None:
            if self._estimates is not None and self._transfer_s is not None:
                self._latencies = self._estimates.total_s + self._transfer_s
            else:
                self._latencies = np.array(
                    [r.latency_s for r in self.records], dtype=np.float64
                )
        return self._latencies

    def bound_labels(self) -> list[str]:
        """Per-kernel roofline bound ("dispatch"/"launch"/"compute"/"memory")."""
        if self._estimates is not None:
            return self._estimates.bound_labels()
        return [r.estimate.bound for r in self.records]

    @property
    def records(self) -> list[KernelRecord]:
        if self._records is None:
            estimates, transfers = self._estimates, self._transfer_s
            assert estimates is not None and transfers is not None
            self._records = [
                KernelRecord(
                    kernel=kernel,
                    estimate=estimates.estimate(i),
                    transfer_s=float(transfers[i]),
                )
                for i, kernel in enumerate(self.plan.kernels)
            ]
        return self._records


#: active simulation backend; flipped by :func:`use_reference_backend` so
#: benchmarks can time the scalar path through the exact same call sites.
_BACKEND = "vectorized"


@contextmanager
def use_reference_backend() -> Iterator[None]:
    """Route :func:`simulate` through the scalar reference implementation.

    For benchmarking and validation only — results are bit-identical, just
    orders of magnitude more Python work.
    """
    global _BACKEND
    previous = _BACKEND
    _BACKEND = "reference"
    try:
        yield
    finally:
        _BACKEND = previous


def _raise_missing_devices(
    plan: ExecutionPlan, platform: Platform, missing_mask: np.ndarray
) -> None:
    """Raise a :class:`RegistryError` naming the kernels placed on device
    kinds the platform lacks (the old path re-called ``platform.device``
    solely to re-raise its error, losing the offending kernels)."""
    rows = np.unique(plan_arrays(plan).device_idx[missing_mask])
    kinds = sorted(_DEVICE_KINDS[row].value.upper() for row in rows)
    offenders = [
        kernel.name
        for kernel, absent in zip(plan.kernels, missing_mask)
        if absent
    ]
    shown = ", ".join(offenders[:5])
    if len(offenders) > 5:
        shown += f", ... ({len(offenders)} total)"
    raise RegistryError(
        f"platform {platform.platform_id} has no {'/'.join(kinds)},"
        f" required by plan {plan.flow!r} kernels: {shown}"
    )


def simulate(plan: ExecutionPlan, platform: Platform) -> SimulationResult:
    """Estimate the wall-clock timeline of ``plan`` on ``platform``.

    Vectorized over all kernels; bit-identical to :func:`simulate_reference`.
    """
    if _BACKEND == "reference":
        return simulate_reference(plan, platform)
    arrays = plan_arrays(plan)
    tables = _device_tables(platform)
    didx = arrays.device_idx
    present = tables.present[didx]
    if not present.all():
        _raise_missing_devices(plan, platform, ~present)
    profile = dispatch_profile(plan.dispatch_profile)
    is_gpu = tables.is_gpu[didx]

    eff_compute_table, eff_memory_table = _efficiency_tables()
    eff_compute = eff_compute_table[didx, arrays.category_idx]
    eff_memory = eff_memory_table[didx, arrays.category_idx]

    dispatch_s = _dispatch_table(profile)[didx, arrays.metadata_only.astype(np.int64)]

    gemm_peak = tables.gemm_peak[didx, arrays.dtype_code]
    # eager PyTorch ships with TF32 disabled; engine flows scale the f32 pipe.
    f32_on_gpu = (arrays.dtype_code == _DTYPE_F32) & is_gpu
    gemm_peak = np.where(f32_on_gpu, gemm_peak * plan.gemm_peak_scale_f32, gemm_peak)
    saturation_flops = tables.gemm_saturation[didx] * plan.gemm_saturation_scale

    estimates = estimate_kernels_batch(
        is_async=tables.is_async[didx],
        is_gemm=arrays.is_gemm,
        flops=arrays.flops,
        total_bytes=arrays.total_bytes,
        metadata_only=arrays.metadata_only,
        is_custom=arrays.is_custom,
        launch_count=arrays.launch_count,
        dispatch_s=dispatch_s,
        eff_compute=eff_compute,
        eff_memory=eff_memory,
        gemm_peak=gemm_peak,
        gemm_saturation_flops=saturation_flops,
        vector_flops=tables.vector_flops[didx],
        mem_bandwidth=tables.mem_bandwidth[didx],
        kernel_launch_s=tables.kernel_launch_s[didx],
    )

    links = _transfer_tables(platform, plan.target)[didx]
    transfer_s = np.where(
        arrays.transfer_in > 0.0,
        (links[:, 0] + arrays.transfer_in / links[:, 1]) + FALLBACK_SYNC_S,
        0.0,
    ) + np.where(
        arrays.transfer_out > 0.0,
        (links[:, 2] + arrays.transfer_out / links[:, 3]) + FALLBACK_SYNC_S,
        0.0,
    )

    latencies = estimates.total_s + transfer_s
    # cumsum is a sequential left-to-right accumulation, so the total matches
    # the reference loop's running `+=` bit-for-bit (np.sum's pairwise
    # summation would not).
    wall = float(np.cumsum(latencies)[-1]) if len(latencies) else 0.0

    utilization = estimates.utilization
    energy = {
        spec.kind: _device_energy(
            spec, didx == _KIND_INDEX[spec.kind], utilization, estimates.device_s, wall
        )
        for spec in platform.devices
    }

    return SimulationResult(
        plan=plan,
        platform=platform,
        total_latency_s=wall,
        energy_j=energy,
        estimates=estimates,
        transfer_s=transfer_s,
    )


def _device_energy(
    device: DeviceSpec,
    mask: np.ndarray,
    utilization: np.ndarray,
    device_s: np.ndarray,
    wall_s: float,
) -> float:
    """Two-term power model over one device's kernels (see hardware.energy)."""
    dynamic_power = device.peak_power_w - device.idle_power_w
    contributions = np.where(mask, dynamic_power * utilization * device_s, 0.0)
    dynamic_j = float(np.cumsum(contributions)[-1]) if len(contributions) else 0.0
    return device.idle_power_w * wall_s + dynamic_j


def simulate_reference(plan: ExecutionPlan, platform: Platform) -> SimulationResult:
    """Kernel-by-kernel scalar simulation — the reference implementation.

    The vectorized :func:`simulate` must match this exactly; equivalence is
    enforced by ``tests/test_sweep.py``.
    """
    profile = dispatch_profile(plan.dispatch_profile)
    result = SimulationResult(plan=plan, platform=platform, records=[])
    accumulators = {spec.kind: EnergyAccumulator(spec) for spec in platform.devices}
    target = plan.target

    for kernel in plan.kernels:
        device = platform.device(kernel.device)
        estimate = estimate_kernel(
            device=device,
            category=kernel.category,
            cost=kernel.cost,
            dtype=kernel.dtype,
            dispatch_s=profile.dispatch_for(device.kind, kernel.metadata_only),
            is_custom=kernel.is_custom,
            metadata_only=kernel.metadata_only,
            launch_count=kernel.launch_count,
            gemm_peak_scale_f32=plan.gemm_peak_scale_f32,
            gemm_saturation_scale=plan.gemm_saturation_scale,
        )
        peer = _transfer_peer(target, kernel.device)
        transfer_s = 0.0
        if kernel.transfer_bytes_in:
            transfer_s += (
                platform.transfer_time(peer, kernel.device, kernel.transfer_bytes_in)
                + FALLBACK_SYNC_S
            )
        if kernel.transfer_bytes_out:
            transfer_s += (
                platform.transfer_time(kernel.device, peer, kernel.transfer_bytes_out)
                + FALLBACK_SYNC_S
            )
        record = KernelRecord(kernel=kernel, estimate=estimate, transfer_s=transfer_s)
        result.records.append(record)
        result.total_latency_s += record.latency_s
        accumulator = accumulators.get(kernel.device)
        if accumulator is not None:
            accumulator.add_kernel(estimate)

    wall = result.total_latency_s
    result.energy_j = {
        kind: accumulator.total_j(wall) for kind, accumulator in accumulators.items()
    }
    return result
