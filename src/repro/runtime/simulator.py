"""Latency and energy simulation of execution plans.

Walks a lowered :class:`~repro.flows.plan.ExecutionPlan` on a
:class:`~repro.hardware.platform.Platform`, estimating each kernel with the
roofline cost model, adding PCIe transfers for CPU-fallback kernels, and
integrating the power model for energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.flows.plan import ExecutionPlan, PlannedKernel
from repro.hardware.calibration import FALLBACK_SYNC_S, dispatch_profile
from repro.hardware.cost_model import LatencyEstimate, estimate_kernel
from repro.hardware.device import DeviceKind
from repro.hardware.energy import EnergyAccumulator
from repro.hardware.platform import Platform


@dataclass(frozen=True)
class KernelRecord:
    """Simulated timing of one planned kernel."""

    kernel: PlannedKernel
    estimate: LatencyEstimate
    transfer_s: float

    @property
    def latency_s(self) -> float:
        return self.estimate.total_s + self.transfer_s


@dataclass
class SimulationResult:
    """Timeline of one simulated inference."""

    plan: ExecutionPlan
    platform: Platform
    records: list[KernelRecord] = field(default_factory=list)
    total_latency_s: float = 0.0
    gpu_energy_j: float = 0.0
    cpu_energy_j: float = 0.0

    @property
    def total_latency_ms(self) -> float:
        return self.total_latency_s * 1e3


def simulate(plan: ExecutionPlan, platform: Platform) -> SimulationResult:
    """Estimate the wall-clock timeline of ``plan`` on ``platform``."""
    profile = dispatch_profile(plan.dispatch_profile)
    result = SimulationResult(plan=plan, platform=platform)
    gpu_acc = EnergyAccumulator(platform.gpu) if platform.has_gpu else None
    cpu_acc = EnergyAccumulator(platform.cpu)

    for kernel in plan.kernels:
        device = platform.device(kernel.device)
        estimate = estimate_kernel(
            device=device,
            category=kernel.category,
            cost=kernel.cost,
            dtype=kernel.dtype,
            dispatch_s=profile.dispatch_s(device.is_gpu, kernel.metadata_only),
            is_custom=kernel.is_custom,
            metadata_only=kernel.metadata_only,
            launch_count=kernel.launch_count,
            gemm_peak_scale_f32=plan.gemm_peak_scale_f32,
            gemm_saturation_scale=plan.gemm_saturation_scale,
        )
        transfer_s = 0.0
        if kernel.transfer_bytes_in:
            transfer_s += platform.transfer_time(kernel.transfer_bytes_in) + FALLBACK_SYNC_S
        if kernel.transfer_bytes_out:
            transfer_s += platform.transfer_time(kernel.transfer_bytes_out) + FALLBACK_SYNC_S
        record = KernelRecord(kernel=kernel, estimate=estimate, transfer_s=transfer_s)
        result.records.append(record)
        result.total_latency_s += record.latency_s
        if kernel.device is DeviceKind.GPU and gpu_acc is not None:
            gpu_acc.add_kernel(estimate)
        elif kernel.device is DeviceKind.CPU:
            cpu_acc.add_kernel(estimate)

    wall = result.total_latency_s
    result.cpu_energy_j = cpu_acc.total_j(wall)
    result.gpu_energy_j = gpu_acc.total_j(wall) if gpu_acc is not None else 0.0
    return result
