"""Latency and energy simulation of execution plans.

Walks a lowered :class:`~repro.flows.plan.ExecutionPlan` on a
:class:`~repro.hardware.platform.Platform`, estimating each kernel with the
roofline cost model, adding PCIe transfers for CPU-fallback kernels, and
integrating the power model for energy.

Two implementations produce bit-identical results:

* :func:`simulate` — the production path.  It lifts the plan into per-kernel
  numpy arrays (built once per plan and cached on it) and estimates every
  kernel in one :func:`~repro.hardware.cost_model.estimate_kernels_batch`
  call, so a 10k-kernel plan costs a handful of array operations instead of
  10k Python-level roofline evaluations.
* :func:`simulate_reference` — the original kernel-by-kernel loop over the
  scalar :func:`~repro.hardware.cost_model.estimate_kernel`.  It is kept as
  the executable specification; the equivalence tests assert the vectorized
  path matches it exactly.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.flows.plan import ExecutionPlan, PlannedKernel
from repro.hardware.calibration import (
    FALLBACK_SYNC_S,
    PCIE_LATENCY_S,
    dispatch_profile,
    efficiency_for,
)
from repro.hardware.cost_model import (
    BatchEstimates,
    LatencyEstimate,
    estimate_kernel,
    estimate_kernels_batch,
)
from repro.hardware.device import DeviceKind, DeviceSpec
from repro.hardware.energy import EnergyAccumulator
from repro.hardware.platform import Platform
from repro.ir.dtype import DType
from repro.ops.base import OpCategory

#: stable category order used to index the efficiency lookup tables.
_CATEGORIES = tuple(OpCategory)
_CATEGORY_INDEX = {category: i for i, category in enumerate(_CATEGORIES)}

#: dtype codes for GEMM peak selection: f32 (TF32-scalable), f16/bf16, i8,
#: and "other" (falls back to the f32 pipe rate but never gets the TF32 scale).
_DTYPE_F32, _DTYPE_F16, _DTYPE_I8, _DTYPE_OTHER = 0, 1, 2, 3
_DTYPE_CODE = {
    DType.F32: _DTYPE_F32,
    DType.F16: _DTYPE_F16,
    DType.BF16: _DTYPE_F16,
    DType.I8: _DTYPE_I8,
}

#: attribute used to cache the platform-independent arrays on a plan.
_PLAN_ARRAYS_ATTR = "_simulator_arrays"

#: lazily-built efficiency lookup tables indexed [is_gpu, category]; the
#: calibration data is static, so they are computed once per process.
_EFF_TABLES: tuple[np.ndarray, np.ndarray] | None = None


def _efficiency_tables() -> tuple[np.ndarray, np.ndarray]:
    global _EFF_TABLES
    if _EFF_TABLES is None:
        _EFF_TABLES = (
            np.array(
                [
                    [efficiency_for(c, is_gpu=False).compute for c in _CATEGORIES],
                    [efficiency_for(c, is_gpu=True).compute for c in _CATEGORIES],
                ]
            ),
            np.array(
                [
                    [efficiency_for(c, is_gpu=False).memory for c in _CATEGORIES],
                    [efficiency_for(c, is_gpu=True).memory for c in _CATEGORIES],
                ]
            ),
        )
    return _EFF_TABLES


@dataclass(frozen=True)
class KernelRecord:
    """Simulated timing of one planned kernel."""

    kernel: PlannedKernel
    estimate: LatencyEstimate
    transfer_s: float

    @property
    def latency_s(self) -> float:
        return self.estimate.total_s + self.transfer_s


@dataclass(frozen=True)
class PlanArrays:
    """Platform-independent per-kernel arrays lifted from a plan once."""

    category_idx: np.ndarray  # int index into _CATEGORIES
    on_gpu: np.ndarray  # bool: kernel.device is GPU
    is_gemm: np.ndarray
    flops: np.ndarray
    total_bytes: np.ndarray
    metadata_only: np.ndarray
    is_custom: np.ndarray
    launch_count: np.ndarray
    dtype_code: np.ndarray
    transfer_in: np.ndarray
    transfer_out: np.ndarray


def plan_arrays(plan: ExecutionPlan) -> PlanArrays:
    """The per-kernel array view of ``plan``, built once and cached on it."""
    cached = getattr(plan, _PLAN_ARRAYS_ATTR, None)
    if cached is not None:
        return cached
    gpu = DeviceKind.GPU
    gemm = OpCategory.GEMM
    columns = [
        (
            _CATEGORY_INDEX[k.category],
            k.device is gpu,
            k.category is gemm,
            k.cost.flops,
            k.cost.total_bytes,
            k.metadata_only,
            k.is_custom,
            k.launch_count,
            _DTYPE_CODE.get(k.dtype, _DTYPE_OTHER),
            k.transfer_bytes_in,
            k.transfer_bytes_out,
        )
        for k in plan.kernels
    ]
    if columns:
        (cat, on_gpu, is_gemm, flops, nbytes, meta, custom, launches, dcode,
         tin, tout) = zip(*columns)
    else:
        cat = on_gpu = is_gemm = flops = nbytes = meta = custom = launches = dcode = tin = tout = ()
    arrays = PlanArrays(
        category_idx=np.array(cat, dtype=np.int64),
        on_gpu=np.array(on_gpu, dtype=bool),
        is_gemm=np.array(is_gemm, dtype=bool),
        flops=np.array(flops, dtype=np.float64),
        total_bytes=np.array(nbytes, dtype=np.float64),
        metadata_only=np.array(meta, dtype=bool),
        is_custom=np.array(custom, dtype=bool),
        launch_count=np.array(launches, dtype=np.float64),
        dtype_code=np.array(dcode, dtype=np.int64),
        transfer_in=np.array(tin, dtype=np.float64),
        transfer_out=np.array(tout, dtype=np.float64),
    )
    setattr(plan, _PLAN_ARRAYS_ATTR, arrays)
    return arrays


class SimulationResult:
    """Timeline of one simulated inference.

    The vectorized simulator stores per-kernel latencies and bound labels as
    arrays; the :attr:`records` list of :class:`KernelRecord` objects is
    materialized lazily for callers that want the object view.
    """

    def __init__(
        self,
        plan: ExecutionPlan,
        platform: Platform,
        records: list[KernelRecord] | None = None,
        total_latency_s: float = 0.0,
        gpu_energy_j: float = 0.0,
        cpu_energy_j: float = 0.0,
        estimates: BatchEstimates | None = None,
        transfer_s: np.ndarray | None = None,
    ):
        self.plan = plan
        self.platform = platform
        self.total_latency_s = total_latency_s
        self.gpu_energy_j = gpu_energy_j
        self.cpu_energy_j = cpu_energy_j
        self._records = records
        self._estimates = estimates
        self._transfer_s = transfer_s
        self._latencies: np.ndarray | None = None

    @property
    def total_latency_ms(self) -> float:
        return self.total_latency_s * 1e3

    @property
    def estimates(self) -> BatchEstimates | None:
        """The vectorized per-kernel estimates (None for reference runs)."""
        return self._estimates

    @property
    def latencies(self) -> np.ndarray:
        """Per-kernel wall-clock latency (estimate + transfers), float64."""
        if self._latencies is None:
            if self._estimates is not None and self._transfer_s is not None:
                self._latencies = self._estimates.total_s + self._transfer_s
            else:
                self._latencies = np.array(
                    [r.latency_s for r in self.records], dtype=np.float64
                )
        return self._latencies

    def bound_labels(self) -> list[str]:
        """Per-kernel roofline bound ("dispatch"/"launch"/"compute"/"memory")."""
        if self._estimates is not None:
            return self._estimates.bound_labels()
        return [r.estimate.bound for r in self.records]

    @property
    def records(self) -> list[KernelRecord]:
        if self._records is None:
            estimates, transfers = self._estimates, self._transfer_s
            assert estimates is not None and transfers is not None
            self._records = [
                KernelRecord(
                    kernel=kernel,
                    estimate=estimates.estimate(i),
                    transfer_s=float(transfers[i]),
                )
                for i, kernel in enumerate(self.plan.kernels)
            ]
        return self._records


#: active simulation backend; flipped by :func:`use_reference_backend` so
#: benchmarks can time the scalar path through the exact same call sites.
_BACKEND = "vectorized"


@contextmanager
def use_reference_backend() -> Iterator[None]:
    """Route :func:`simulate` through the scalar reference implementation.

    For benchmarking and validation only — results are bit-identical, just
    orders of magnitude more Python work.
    """
    global _BACKEND
    previous = _BACKEND
    _BACKEND = "reference"
    try:
        yield
    finally:
        _BACKEND = previous


def simulate(plan: ExecutionPlan, platform: Platform) -> SimulationResult:
    """Estimate the wall-clock timeline of ``plan`` on ``platform``.

    Vectorized over all kernels; bit-identical to :func:`simulate_reference`.
    """
    if _BACKEND == "reference":
        return simulate_reference(plan, platform)
    arrays = plan_arrays(plan)
    if arrays.on_gpu.any() and not platform.has_gpu:
        platform.device(DeviceKind.GPU)  # raises the same RegistryError
    profile = dispatch_profile(plan.dispatch_profile)
    cpu = platform.cpu
    gpu = platform.gpu if platform.has_gpu else platform.cpu
    on_gpu = arrays.on_gpu

    def per_device(gpu_value: float, cpu_value: float) -> np.ndarray:
        return np.where(on_gpu, gpu_value, cpu_value)

    eff_compute_table, eff_memory_table = _efficiency_tables()
    gpu_row = on_gpu.astype(np.int64)
    eff_compute = eff_compute_table[gpu_row, arrays.category_idx]
    eff_memory = eff_memory_table[gpu_row, arrays.category_idx]

    dispatch_s = np.where(
        on_gpu,
        np.where(arrays.metadata_only, profile.gpu_metadata, profile.gpu_kernel),
        np.where(arrays.metadata_only, profile.cpu_metadata, profile.cpu_kernel),
    )

    def gemm_peak_for(device: DeviceSpec) -> np.ndarray:
        peaks = np.array(
            [
                device.gemm_flops_f32,
                device.gemm_flops_f16,
                device.gemm_flops_i8,
                device.gemm_flops_f32,
            ]
        )
        return peaks[arrays.dtype_code]

    gemm_peak = np.where(on_gpu, gemm_peak_for(gpu), gemm_peak_for(cpu))
    # eager PyTorch ships with TF32 disabled; engine flows scale the f32 pipe.
    f32_on_gpu = (arrays.dtype_code == _DTYPE_F32) & on_gpu
    gemm_peak = np.where(f32_on_gpu, gemm_peak * plan.gemm_peak_scale_f32, gemm_peak)
    saturation_flops = (
        per_device(gpu.gemm_saturation_flops, cpu.gemm_saturation_flops)
        * plan.gemm_saturation_scale
    )

    estimates = estimate_kernels_batch(
        is_gpu=on_gpu,
        is_gemm=arrays.is_gemm,
        flops=arrays.flops,
        total_bytes=arrays.total_bytes,
        metadata_only=arrays.metadata_only,
        is_custom=arrays.is_custom,
        launch_count=arrays.launch_count,
        dispatch_s=dispatch_s,
        eff_compute=eff_compute,
        eff_memory=eff_memory,
        gemm_peak=gemm_peak,
        gemm_saturation_flops=saturation_flops,
        vector_flops=per_device(gpu.vector_flops, cpu.vector_flops),
        mem_bandwidth=per_device(gpu.mem_bandwidth, cpu.mem_bandwidth),
        kernel_launch_s=per_device(gpu.kernel_launch_s, cpu.kernel_launch_s),
    )

    transfer_s = np.where(
        arrays.transfer_in > 0.0,
        (PCIE_LATENCY_S + arrays.transfer_in / platform.pcie_bandwidth) + FALLBACK_SYNC_S,
        0.0,
    ) + np.where(
        arrays.transfer_out > 0.0,
        (PCIE_LATENCY_S + arrays.transfer_out / platform.pcie_bandwidth) + FALLBACK_SYNC_S,
        0.0,
    )

    latencies = estimates.total_s + transfer_s
    # cumsum is a sequential left-to-right accumulation, so the total matches
    # the reference loop's running `+=` bit-for-bit (np.sum's pairwise
    # summation would not).
    wall = float(np.cumsum(latencies)[-1]) if len(latencies) else 0.0

    utilization = estimates.utilization
    cpu_energy = _device_energy(
        cpu, ~on_gpu, utilization, estimates.device_s, wall
    )
    if platform.has_gpu:
        gpu_energy = _device_energy(
            platform.gpu, on_gpu, utilization, estimates.device_s, wall
        )
    else:
        gpu_energy = 0.0

    return SimulationResult(
        plan=plan,
        platform=platform,
        total_latency_s=wall,
        gpu_energy_j=gpu_energy,
        cpu_energy_j=cpu_energy,
        estimates=estimates,
        transfer_s=transfer_s,
    )


def _device_energy(
    device: DeviceSpec,
    mask: np.ndarray,
    utilization: np.ndarray,
    device_s: np.ndarray,
    wall_s: float,
) -> float:
    """Two-term power model over one device's kernels (see hardware.energy)."""
    dynamic_power = device.peak_power_w - device.idle_power_w
    contributions = np.where(mask, dynamic_power * utilization * device_s, 0.0)
    dynamic_j = float(np.cumsum(contributions)[-1]) if len(contributions) else 0.0
    return device.idle_power_w * wall_s + dynamic_j


def simulate_reference(plan: ExecutionPlan, platform: Platform) -> SimulationResult:
    """Kernel-by-kernel scalar simulation — the reference implementation.

    The vectorized :func:`simulate` must match this exactly; equivalence is
    enforced by ``tests/test_sweep.py``.
    """
    profile = dispatch_profile(plan.dispatch_profile)
    result = SimulationResult(plan=plan, platform=platform, records=[])
    gpu_acc = EnergyAccumulator(platform.gpu) if platform.has_gpu else None
    cpu_acc = EnergyAccumulator(platform.cpu)

    for kernel in plan.kernels:
        device = platform.device(kernel.device)
        estimate = estimate_kernel(
            device=device,
            category=kernel.category,
            cost=kernel.cost,
            dtype=kernel.dtype,
            dispatch_s=profile.dispatch_s(device.is_gpu, kernel.metadata_only),
            is_custom=kernel.is_custom,
            metadata_only=kernel.metadata_only,
            launch_count=kernel.launch_count,
            gemm_peak_scale_f32=plan.gemm_peak_scale_f32,
            gemm_saturation_scale=plan.gemm_saturation_scale,
        )
        transfer_s = 0.0
        if kernel.transfer_bytes_in:
            transfer_s += platform.transfer_time(kernel.transfer_bytes_in) + FALLBACK_SYNC_S
        if kernel.transfer_bytes_out:
            transfer_s += platform.transfer_time(kernel.transfer_bytes_out) + FALLBACK_SYNC_S
        record = KernelRecord(kernel=kernel, estimate=estimate, transfer_s=transfer_s)
        result.records.append(record)
        result.total_latency_s += record.latency_s
        if kernel.device is DeviceKind.GPU and gpu_acc is not None:
            gpu_acc.add_kernel(estimate)
        elif kernel.device is DeviceKind.CPU:
            cpu_acc.add_kernel(estimate)

    wall = result.total_latency_s
    result.cpu_energy_j = cpu_acc.total_j(wall)
    result.gpu_energy_j = gpu_acc.total_j(wall) if gpu_acc is not None else 0.0
    return result
