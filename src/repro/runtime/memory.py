"""Peak activation-memory estimation via liveness analysis.

Part of the paper's performance report ("Peak Memory Usage").  Walks the
graph in topological order keeping every value alive until its last
consumer; peak memory is the high-water mark of live activations plus
resident weights.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.graph import Graph


@dataclass(frozen=True)
class MemoryProfile:
    """Memory footprint summary for one graph."""

    weight_bytes: int
    peak_activation_bytes: int

    @property
    def peak_total_bytes(self) -> int:
        return self.weight_bytes + self.peak_activation_bytes


def profile_memory(graph: Graph) -> MemoryProfile:
    """Compute resident-weight and peak-activation bytes for ``graph``."""
    weight_bytes = sum(node.op.weight_bytes() for node in graph.nodes)

    last_use: dict[tuple[int, int], int] = {}
    for node in graph.nodes:
        for value in node.inputs:
            last_use[(value.node_id, value.port)] = node.node_id
    for value in graph.outputs:
        last_use[(value.node_id, value.port)] = len(graph.nodes)

    # metadata-only ops alias their input storage: attribute zero new bytes.
    live = 0
    peak = 0
    free_at: dict[int, int] = {}
    for node in graph.nodes:
        if not node.op.is_metadata_only or node.is_placeholder:
            produced = sum(
                spec.nbytes
                for port, spec in enumerate(node.outputs)
                if (node.node_id, port) in last_use
            )
            live += produced
            peak = max(peak, live)
            for port, spec in enumerate(node.outputs):
                key = (node.node_id, port)
                if key in last_use:
                    release_point = last_use[key]
                    free_at[release_point] = free_at.get(release_point, 0) + spec.nbytes
        live -= free_at.pop(node.node_id, 0)

    return MemoryProfile(weight_bytes=weight_bytes, peak_activation_bytes=peak)
