"""The three NonGEMM Bench output reports (paper Section III-C).

* :class:`PerformanceReport` — end-to-end latency with operator-level
  breakdown, energy, and peak memory.
* :class:`WorkloadReport` — operator kinds and tensor shapes captured from
  the graph.
* :class:`NonGemmReport` — non-GEMM-specific insights: operator variants per
  group, dominant groups, taxonomy traits.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.classify import describe_node
from repro.ir.graph import Graph
from repro.ops.base import OpCategory
from repro.profiler.records import GROUP_ORDER, ProfileResult, report_group

Row = dict[str, object]


@dataclass
class PerformanceReport:
    """Latency/energy/memory view of one profile."""

    profile: ProfileResult

    def summary_row(self) -> Row:
        p = self.profile
        return {
            "model": p.model,
            "flow": p.flow,
            "platform": p.platform.platform_id,
            "device": "cpu+gpu" if p.use_gpu else "cpu",
            "batch": p.batch_size,
            "latency_ms": round(p.total_latency_ms, 4),
            "latency_std_ms": round(p.total_latency_std_s * 1e3, 4),
            "gemm_pct": round(100 * p.gemm_share, 2),
            "non_gemm_pct": round(100 * p.non_gemm_share, 2),
            "gpu_energy_j": round(p.gpu_energy_j, 4),
            "cpu_energy_j": round(p.cpu_energy_j, 4),
            "peak_memory_mb": round(p.peak_memory_bytes / 1e6, 2),
            "kernels": p.num_kernels,
            "graph_ops": p.num_graph_ops,
        }

    def breakdown_rows(self) -> list[Row]:
        """Per operator-group latency shares, in figure order."""
        shares = self.profile.share_by_group()
        latencies = self.profile.latency_by_group()
        rows = []
        for group in GROUP_ORDER:
            if group not in shares:
                continue
            rows.append(
                {
                    "model": self.profile.model,
                    "batch": self.profile.batch_size,
                    "group": group.value,
                    "latency_ms": round(latencies[group] * 1e3, 4),
                    "share_pct": round(100 * shares[group], 2),
                }
            )
        return rows

    def top_operator_rows(self, n: int = 10) -> list[Row]:
        return [
            {
                "name": r.name,
                "kinds": "+".join(r.op_kinds),
                "group": r.group.value,
                "latency_us": round(r.latency_s * 1e6, 2),
                "bound": r.bound,
                "fused": r.fused,
            }
            for r in self.profile.top_operators(n)
        ]


@dataclass
class WorkloadReport:
    """Static view of the model graph: op mix, shapes, parameters."""

    graph: Graph

    def op_count_rows(self) -> list[Row]:
        stats = self.graph.stats()
        return [
            {"op": kind, "count": count}
            for kind, count in sorted(stats.op_counts.items(), key=lambda kv: -kv[1])
        ]

    def summary_row(self) -> Row:
        stats = self.graph.stats()
        return {
            "model": self.graph.name,
            "ops": stats.num_nodes,
            "gemm_ops": stats.gemm_op_count,
            "non_gemm_ops": stats.non_gemm_op_count,
            "params": stats.num_params,
        }

    def shape_rows(self, limit: int | None = None) -> list[Row]:
        rows = []
        for node in self.graph.compute_nodes():
            rows.append(
                {
                    "name": node.qualified_name,
                    "op": node.op.kind,
                    "inputs": [str(v.spec) for v in node.inputs],
                    "outputs": [str(s) for s in node.outputs],
                }
            )
            if limit is not None and len(rows) >= limit:
                break
        return rows


@dataclass
class NonGemmReport:
    """Non-GEMM-specific analysis: variants, taxonomy, dominant groups."""

    graph: Graph
    profile: ProfileResult | None = None

    def variant_rows(self) -> list[Row]:
        """Operator variants per group (e.g. DETR's two BatchNorm flavours)."""
        variants: dict[OpCategory, Counter[str]] = {}
        for node in self.graph.compute_nodes():
            group = report_group(node.op.category)
            if group is OpCategory.GEMM:
                continue
            variants.setdefault(group, Counter())[node.op.describe()] += 1
        rows = []
        for group in GROUP_ORDER:
            if group not in variants:
                continue
            for variant, count in variants[group].most_common():
                rows.append({"group": group.value, "variant": variant, "count": count})
        return rows

    def taxonomy_rows(self, unique: bool = True) -> list[Row]:
        """Table I-style rows: one per (op kind) with traits and example shape."""
        seen: set[str] = set()
        rows = []
        for node in self.graph.compute_nodes():
            if node.op.category is OpCategory.GEMM or node.op.kind == "constant":
                continue
            if unique and node.op.kind in seen:
                continue
            seen.add(node.op.kind)
            row = describe_node(node)
            row["model"] = self.graph.name
            rows.append(row)
        return rows

    def dominant_row(self) -> Row | None:
        if self.profile is None:
            return None
        group, share = self.profile.dominant_non_gemm_group()
        return {
            "model": self.profile.model,
            "dominant_group": group.value,
            "share_pct": round(100 * share, 2),
        }


@dataclass
class BenchReports:
    """Everything one bench run produces for one (model, batch) point."""

    performance: PerformanceReport
    workload: WorkloadReport
    non_gemm: NonGemmReport
    extras: dict[str, object] = field(default_factory=dict)
