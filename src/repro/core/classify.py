"""Operator taxonomy: the characteristics columns of the paper's Table I.

Classifies every operator kind by the five structural properties the paper
uses to explain why non-GEMM operators resist GEMM-style optimization:
single-operation, single-operand, non-linearity, dynamicity, and reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.node import Node
from repro.ops.base import OpCategory, Operator


@dataclass(frozen=True)
class OpTraits:
    """Structural characteristics of one operator kind (Table I columns)."""

    single_operation: bool
    single_operand: bool
    non_linear: bool
    dynamic: bool
    reduction: bool


_TRAITS: dict[str, OpTraits] = {
    # activations: one elementwise op over one operand; GELU/SiLU non-linear
    "relu": OpTraits(True, True, True, False, False),
    "gelu": OpTraits(True, True, True, False, False),
    "silu": OpTraits(True, True, True, False, False),
    "sigmoid": OpTraits(True, True, True, False, False),
    "tanh": OpTraits(True, True, True, False, False),
    "hardswish": OpTraits(True, True, True, False, False),
    # normalizations: single operand, non-linear (sqrt), reduction over a dim
    "layer_norm": OpTraits(False, True, True, False, True),
    "rms_norm": OpTraits(False, True, True, False, True),
    "batch_norm2d": OpTraits(False, True, True, False, True),
    "frozen_batch_norm2d": OpTraits(False, True, True, False, True),
    "group_norm": OpTraits(False, True, True, False, True),
    # elementwise arithmetic
    "add": OpTraits(True, False, False, False, False),
    "sub": OpTraits(True, False, False, False, False),
    "mul": OpTraits(True, False, False, False, False),
    "div": OpTraits(True, False, False, False, False),
    "maximum": OpTraits(True, False, False, False, False),
    "neg": OpTraits(True, True, False, False, False),
    "abs": OpTraits(True, True, False, False, False),
    "sqrt": OpTraits(True, True, True, False, False),
    "rsqrt": OpTraits(True, True, True, False, False),
    "exp": OpTraits(True, True, True, False, False),
    "add_scalar": OpTraits(True, True, False, False, False),
    "mul_scalar": OpTraits(True, True, False, False, False),
    "div_scalar": OpTraits(True, True, False, False, False),
    "pow_scalar": OpTraits(True, True, True, False, False),
    # memory ops: single op, single operand
    "reshape": OpTraits(True, True, False, False, False),
    "view": OpTraits(True, True, False, False, False),
    "permute": OpTraits(True, True, False, False, False),
    "transpose": OpTraits(True, True, False, False, False),
    "contiguous": OpTraits(True, True, False, False, False),
    "expand": OpTraits(True, True, False, False, False),
    "squeeze": OpTraits(True, True, False, False, False),
    "unsqueeze": OpTraits(True, True, False, False, False),
    "split": OpTraits(True, True, False, False, False),
    "slice": OpTraits(True, True, False, False, False),
    "concat": OpTraits(True, False, False, False, False),
    "roll": OpTraits(True, True, False, False, False),
    "pad": OpTraits(True, True, False, False, False),
    "gather": OpTraits(True, False, False, True, False),
    "index_add": OpTraits(True, False, False, True, False),
    "nonzero": OpTraits(True, True, False, True, False),
    # logit computation: non-linear + dynamic-range + reduction
    "softmax": OpTraits(False, True, True, True, True),
    "log_softmax": OpTraits(False, True, True, True, True),
    # RoI selection: data-dependent control flow
    "nms": OpTraits(False, False, False, True, False),
    "roi_align": OpTraits(False, False, False, True, False),
    # interpolation / pooling / reductions
    "interpolate": OpTraits(False, True, False, False, False),
    "max_pool2d": OpTraits(False, True, False, False, True),
    "avg_pool2d": OpTraits(False, True, False, False, True),
    "adaptive_avg_pool2d": OpTraits(False, True, False, False, True),
    "mean": OpTraits(True, True, False, False, True),
    "sum": OpTraits(True, True, False, False, True),
    "max": OpTraits(True, True, False, False, True),
    "argmax": OpTraits(True, True, False, False, True),
    # misc
    "where": OpTraits(True, False, False, False, False),
    "masked_fill": OpTraits(True, False, False, False, False),
    "tril": OpTraits(True, True, False, False, False),
    "topk": OpTraits(False, True, False, True, False),
    "cast": OpTraits(True, True, False, False, False),
    "embedding": OpTraits(True, False, False, False, False),
    "constant": OpTraits(True, True, False, False, False),
    # quantization
    "quantize": OpTraits(False, True, True, False, True),
    "dequantize": OpTraits(True, False, False, False, False),
}


def traits_for(kind: str) -> OpTraits:
    """Structural traits of an op kind; conservative default when unlisted."""
    return _TRAITS.get(kind, OpTraits(False, False, False, False, False))


def is_non_gemm(op: Operator) -> bool:
    return op.category is not OpCategory.GEMM


def describe_node(node: Node) -> dict[str, object]:
    """One Table I row for a graph node: op, group, traits, example shape."""
    traits = traits_for(node.op.kind)
    shape = list(node.inputs[0].spec.shape) if node.inputs else []
    return {
        "operator": node.op.kind,
        "group": node.op.category.value,
        "single_operation": traits.single_operation,
        "single_operand": traits.single_operand,
        "non_linearity": traits.non_linear,
        "dynamicity": traits.dynamic,
        "reduction": traits.reduction,
        "example_input_shape": shape,
    }
