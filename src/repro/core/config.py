"""Benchmark configuration (the paper's Fig. 4 "Configuration" inputs)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass(frozen=True)
class BenchConfig:
    """One NonGEMM Bench run specification.

    Mirrors the knobs of the paper's flow: which models, batch sizes,
    deployment flow, hardware platform, device mode, and how many profiling
    iterations to aggregate.
    """

    models: tuple[str, ...] = ("gpt2", "swin-b")
    batch_sizes: tuple[int, ...] = (1, 8)
    flow: str = "pytorch"
    platform: str = "A"
    use_gpu: bool = True
    iterations: int = 5
    seed: int = 0
    #: per-model builder overrides, e.g. {"gpt2": {"seq_len": 32}}
    overrides: dict[str, dict] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.models:
            raise ConfigError("BenchConfig needs at least one model")
        if any(b <= 0 for b in self.batch_sizes):
            raise ConfigError(f"batch sizes must be positive, got {self.batch_sizes}")
        if self.iterations <= 0:
            raise ConfigError("iterations must be positive")

    def override_for(self, model: str) -> dict:
        return dict(self.overrides.get(model, {}))
