"""NonGEMM Bench core: configuration, orchestration, and reports."""

from repro.core.bench import BenchResults, NonGEMMBench, run_bench
from repro.core.classify import OpTraits, describe_node, is_non_gemm, traits_for
from repro.core.config import BenchConfig
from repro.core.reports import (
    BenchReports,
    NonGemmReport,
    PerformanceReport,
    WorkloadReport,
)

__all__ = [
    "BenchConfig",
    "BenchReports",
    "BenchResults",
    "NonGEMMBench",
    "NonGemmReport",
    "OpTraits",
    "PerformanceReport",
    "WorkloadReport",
    "describe_node",
    "is_non_gemm",
    "run_bench",
    "traits_for",
]
