"""NonGEMMBench: the top-level orchestrator (paper Fig. 4).

Takes a :class:`BenchConfig`, pulls models from the registry, lowers each
through the selected deployment flow, profiles on the selected platform,
and produces the three reports per (model, batch) point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import BenchConfig
from repro.core.reports import (
    BenchReports,
    NonGemmReport,
    PerformanceReport,
    WorkloadReport,
)
from repro.flows import get_flow
from repro.hardware import get_platform
from repro.models import get_model
from repro.profiler import ProfileResult, profile_graph


@dataclass
class BenchResults:
    """All profiles and reports from one bench run."""

    config: BenchConfig
    profiles: list[ProfileResult] = field(default_factory=list)
    reports: dict[tuple[str, int], BenchReports] = field(default_factory=dict)

    def profile_for(self, model: str, batch: int) -> ProfileResult:
        for profile in self.profiles:
            if profile.model == model and profile.batch_size == batch:
                return profile
        raise KeyError(f"no profile for {model} b{batch}")

    def summary_rows(self) -> list[dict[str, object]]:
        return [
            self.reports[(p.model, p.batch_size)].performance.summary_row()
            for p in self.profiles
        ]


class NonGEMMBench:
    """End-to-end benchmark flow: models -> graphs -> plans -> profiles -> reports."""

    def __init__(self, config: BenchConfig):
        self.config = config
        self.flow = get_flow(config.flow)
        platform = get_platform(config.platform)
        self.platform = platform if config.use_gpu else platform.cpu_only()

    def run(self) -> BenchResults:
        results = BenchResults(config=self.config)
        for model_name in self.config.models:
            entry = get_model(model_name)
            overrides = self.config.override_for(model_name)
            for batch in self.config.batch_sizes:
                graph = entry.build(batch_size=batch, **overrides)
                profile = profile_graph(
                    graph,
                    self.flow,
                    self.platform,
                    use_gpu=self.config.use_gpu,
                    batch_size=batch,
                    iterations=self.config.iterations,
                    seed=self.config.seed,
                    model_name=model_name,
                )
                results.profiles.append(profile)
                results.reports[(model_name, batch)] = BenchReports(
                    performance=PerformanceReport(profile),
                    workload=WorkloadReport(graph),
                    non_gemm=NonGemmReport(graph, profile),
                )
        return results


def run_bench(config: BenchConfig) -> BenchResults:
    """Convenience wrapper: build and run a bench in one call."""
    return NonGEMMBench(config).run()
