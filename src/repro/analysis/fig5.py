"""Figure 5: end-to-end GPU energy per inference on the data-center platform.

All paper models at batch 1 and batch 8, PyTorch flow, Platform A.
"""

from __future__ import annotations

from repro.analysis.common import ExperimentResult
from repro.models import PAPER_MODELS
from repro.sweep.runner import SweepRunner
from repro.sweep.spec import SweepSpec


def run_fig5(
    platform_id: str = "A",
    models: tuple[str, ...] | None = None,
    batch_sizes: tuple[int, ...] = (1, 8),
    iterations: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    spec = SweepSpec(
        name="fig5",
        platforms=(platform_id,),
        models=models or tuple(PAPER_MODELS),
        flows=("pytorch",),
        batch_sizes=batch_sizes,
        iterations=iterations,
        seed=seed,
        order=("model", "batch_size"),
    )
    result = ExperimentResult(
        name="fig5_energy",
        title=f"GPU energy per inference, platform {platform_id} (PyTorch)",
    )
    for record in SweepRunner().run(spec).records:
        profile = record.profile
        result.rows.append(
            {
                "model": record.point.model,
                "batch": record.point.batch_size,
                "gpu_energy_j": round(profile.gpu_energy_j, 3),
                "latency_ms": round(profile.total_latency_ms, 2),
            }
        )
    return result
