"""Figure 5: end-to-end GPU energy per inference on the data-center platform.

All paper models at batch 1 and batch 8, PyTorch flow, Platform A.
"""

from __future__ import annotations

from repro.analysis.common import ExperimentResult
from repro.flows import get_flow
from repro.hardware import get_platform
from repro.models import PAPER_MODELS, build_model
from repro.profiler import profile_graph


def run_fig5(
    platform_id: str = "A",
    models: tuple[str, ...] | None = None,
    batch_sizes: tuple[int, ...] = (1, 8),
    iterations: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    platform = get_platform(platform_id)
    flow = get_flow("pytorch")
    result = ExperimentResult(
        name="fig5_energy",
        title=f"GPU energy per inference, platform {platform_id} (PyTorch)",
    )
    for model in models or tuple(PAPER_MODELS):
        for batch in batch_sizes:
            graph = build_model(model, batch_size=batch)
            profile = profile_graph(
                graph,
                flow,
                platform,
                use_gpu=True,
                batch_size=batch,
                iterations=iterations,
                seed=seed,
                model_name=model,
            )
            result.rows.append(
                {
                    "model": model,
                    "batch": batch,
                    "gpu_energy_j": round(profile.gpu_energy_j, 3),
                    "latency_ms": round(profile.total_latency_ms, 2),
                }
            )
    return result
