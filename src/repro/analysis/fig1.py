"""Figure 1: the motivational GEMM/non-GEMM split, CPU vs CPU+GPU.

GPT2-XL and Swin-b on Platform A (EPYC 7763 + A100), batch 1, PyTorch.
The paper's takeaway: GEMM dominates on CPU; once the GPU accelerates the
GEMMs, non-GEMM operators account for roughly half of the latency.
"""

from __future__ import annotations

from repro.analysis.common import ExperimentResult, ordered_shares
from repro.flows import get_flow
from repro.hardware import get_platform
from repro.models import build_model
from repro.profiler import profile_graph
from repro.viz.ascii import render_stacked_chart

MODELS = ("gpt2-xl", "swin-b")


def run_fig1(platform_id: str = "A", iterations: int = 5, seed: int = 0) -> ExperimentResult:
    platform = get_platform(platform_id)
    flow = get_flow("pytorch")
    result = ExperimentResult(
        name="fig1_motivation",
        title="GEMM vs non-GEMM latency split, CPU vs CPU+GPU (batch 1, PyTorch)",
    )
    bars = []
    for model in MODELS:
        graph = build_model(model, batch_size=1)
        for use_gpu in (False, True):
            plat = platform if use_gpu else platform.cpu_only()
            profile = profile_graph(
                graph, flow, plat, use_gpu=use_gpu, iterations=iterations, seed=seed, model_name=model
            )
            device = "CPU+GPU" if use_gpu else "CPU"
            result.rows.append(
                {
                    "model": model,
                    "device": device,
                    "latency_ms": round(profile.total_latency_ms, 2),
                    "gemm_pct": round(100 * profile.gemm_share, 1),
                    "non_gemm_pct": round(100 * profile.non_gemm_share, 1),
                }
            )
            bars.append(
                (
                    f"{model} [{device}]",
                    {"GEMM": profile.gemm_share, "non-GEMM": profile.non_gemm_share},
                    f"{profile.total_latency_ms:7.2f} ms",
                )
            )
    result.chart = render_stacked_chart(bars)
    return result
