"""Figure 1: the motivational GEMM/non-GEMM split, CPU vs CPU+GPU.

GPT2-XL and Swin-b on Platform A (EPYC 7763 + A100), batch 1, PyTorch.
The paper's takeaway: GEMM dominates on CPU; once the GPU accelerates the
GEMMs, non-GEMM operators account for roughly half of the latency.
"""

from __future__ import annotations

from repro.analysis.common import ExperimentResult
from repro.sweep.runner import SweepRunner
from repro.sweep.spec import SweepSpec
from repro.viz.ascii import render_stacked_chart

MODELS = ("gpt2-xl", "swin-b")


def run_fig1(platform_id: str = "A", iterations: int = 5, seed: int = 0) -> ExperimentResult:
    spec = SweepSpec(
        name="fig1",
        platforms=(platform_id,),
        models=MODELS,
        flows=("pytorch",),
        batch_sizes=(1,),
        devices=("cpu", "gpu"),
        iterations=iterations,
        seed=seed,
        order=("model", "device"),
    )
    result = ExperimentResult(
        name="fig1_motivation",
        title="GEMM vs non-GEMM latency split, CPU vs CPU+GPU (batch 1, PyTorch)",
    )
    bars = []
    for record in SweepRunner().run(spec).records:
        profile = record.profile
        device = "CPU+GPU" if record.point.use_gpu else "CPU"
        result.rows.append(
            {
                "model": record.point.model,
                "device": device,
                "latency_ms": round(profile.total_latency_ms, 2),
                "gemm_pct": round(100 * profile.gemm_share, 1),
                "non_gemm_pct": round(100 * profile.non_gemm_share, 1),
            }
        )
        bars.append(
            (
                f"{record.point.model} [{device}]",
                {"GEMM": profile.gemm_share, "non-GEMM": profile.non_gemm_share},
                f"{profile.total_latency_ms:7.2f} ms",
            )
        )
    result.chart = render_stacked_chart(bars)
    return result
