"""Experiment harnesses regenerating every figure and table of the paper."""

from repro.analysis.common import ExperimentResult
from repro.analysis.ext1_edge import run_ext1
from repro.analysis.ext2_serving import run_ext2
from repro.analysis.ext3_faults import run_ext3
from repro.analysis.ext4_fleet import run_ext4
from repro.analysis.ext5_autoscale import run_ext5
from repro.analysis.fig1 import run_fig1
from repro.analysis.fig5 import run_fig5
from repro.analysis.fig6 import run_fig6
from repro.analysis.fig7 import run_fig7
from repro.analysis.fig8 import run_fig8
from repro.analysis.fig9 import run_fig9
from repro.analysis.tables import run_table1, run_table4, run_table5

EXPERIMENTS = {
    "fig1": run_fig1,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "table1": run_table1,
    "table4": run_table4,
    "table5": run_table5,
    "ext1": run_ext1,
    "ext2": run_ext2,
    "ext3": run_ext3,
    "ext4": run_ext4,
    "ext5": run_ext5,
}

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "run_ext1",
    "run_ext2",
    "run_ext3",
    "run_ext4",
    "run_ext5",
    "run_fig1",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_table1",
    "run_table4",
    "run_table5",
]
