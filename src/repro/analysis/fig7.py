"""Figure 7: deployment-software impact on LLMs — PyTorch vs ONNX Runtime.

GPT2-XL and Llama-2 on Platform A with GPU, batch 1.  The paper's findings:
ORT lowers absolute latency, but unsupported memory operators fall back to
the CPU provider and ballon the Memory group's share (GPT2-XL), while
Llama-2's clean export simply gets faster.
"""

from __future__ import annotations

from repro.analysis.common import ExperimentResult, group_share_columns, ordered_shares
from repro.sweep.runner import SweepRunner
from repro.sweep.spec import SweepSpec
from repro.viz.ascii import render_stacked_chart

MODELS = ("gpt2-xl", "llama2-7b")
FLOWS = ("pytorch", "onnxruntime")


def run_fig7(platform_id: str = "A", iterations: int = 5, seed: int = 0) -> ExperimentResult:
    spec = SweepSpec(
        name="fig7",
        platforms=(platform_id,),
        models=MODELS,
        flows=FLOWS,
        batch_sizes=(1,),
        iterations=iterations,
        seed=seed,
        order=("flow", "model"),
    )
    result = ExperimentResult(
        name="fig7_deployment",
        title="PyTorch vs ONNX Runtime latency breakdown on LLMs (batch 1, GPU)",
    )
    bars = []
    mem_shares: dict[str, float] = {}
    for record in SweepRunner().run(spec).records:
        point, profile = record.point, record.profile
        row = {
            "flow": point.flow,
            "model": point.model,
            "latency_ms": round(profile.total_latency_ms, 2),
            "non_gemm_pct": round(100 * profile.non_gemm_share, 2),
        }
        row.update(group_share_columns(profile))
        result.rows.append(row)
        mem_shares[f"{point.flow}/{point.model}"] = row["memory_pct"]  # type: ignore[assignment]
        bars.append(
            (
                f"{point.model} [{point.flow}]",
                ordered_shares(profile),
                f"{profile.total_latency_ms:7.2f} ms",
            )
        )
    result.chart = render_stacked_chart(bars)
    pt_mem = sum(v for k, v in mem_shares.items() if k.startswith("pytorch")) / len(MODELS)
    ort_mem = sum(v for k, v in mem_shares.items() if k.startswith("onnxruntime")) / len(MODELS)
    result.notes.append(
        f"memory-op share: PyTorch {pt_mem:.1f}% -> ORT {ort_mem:.1f}%"
        " (paper: 3.2% -> 66.8%; mechanism reproduced, magnitude smaller)"
    )
    return result
