"""Figure 7: deployment-software impact on LLMs — PyTorch vs ONNX Runtime.

GPT2-XL and Llama-2 on Platform A with GPU, batch 1.  The paper's findings:
ORT lowers absolute latency, but unsupported memory operators fall back to
the CPU provider and ballon the Memory group's share (GPT2-XL), while
Llama-2's clean export simply gets faster.
"""

from __future__ import annotations

from repro.analysis.common import ExperimentResult, group_share_columns, ordered_shares
from repro.flows import get_flow
from repro.hardware import get_platform
from repro.models import build_model
from repro.profiler import profile_graph
from repro.viz.ascii import render_stacked_chart

MODELS = ("gpt2-xl", "llama2-7b")
FLOWS = ("pytorch", "onnxruntime")


def run_fig7(platform_id: str = "A", iterations: int = 5, seed: int = 0) -> ExperimentResult:
    platform = get_platform(platform_id)
    result = ExperimentResult(
        name="fig7_deployment",
        title="PyTorch vs ONNX Runtime latency breakdown on LLMs (batch 1, GPU)",
    )
    bars = []
    mem_shares: dict[str, float] = {}
    for flow_name in FLOWS:
        flow = get_flow(flow_name)
        for model in MODELS:
            graph = build_model(model, batch_size=1)
            profile = profile_graph(
                graph, flow, platform, use_gpu=True, iterations=iterations, seed=seed, model_name=model
            )
            row = {
                "flow": flow_name,
                "model": model,
                "latency_ms": round(profile.total_latency_ms, 2),
                "non_gemm_pct": round(100 * profile.non_gemm_share, 2),
            }
            row.update(group_share_columns(profile))
            result.rows.append(row)
            mem_shares[f"{flow_name}/{model}"] = row["memory_pct"]  # type: ignore[assignment]
            bars.append(
                (
                    f"{model} [{flow_name}]",
                    ordered_shares(profile),
                    f"{profile.total_latency_ms:7.2f} ms",
                )
            )
    result.chart = render_stacked_chart(bars)
    pt_mem = sum(v for k, v in mem_shares.items() if k.startswith("pytorch")) / len(MODELS)
    ort_mem = sum(v for k, v in mem_shares.items() if k.startswith("onnxruntime")) / len(MODELS)
    result.notes.append(
        f"memory-op share: PyTorch {pt_mem:.1f}% -> ORT {ort_mem:.1f}%"
        " (paper: 3.2% -> 66.8%; mechanism reproduced, magnitude smaller)"
    )
    return result
