"""Extension 1: the non-GEMM horizon on an edge platform.

Beyond the paper's Table III pair, this experiment sweeps the paper models
over three platform classes — data center (A), workstation (B), and the edge
SoC Platform C (big-core CPU + XDNA NPU + Radeon iGPU) — under the PyTorch
flow, plus the ``npu-offload`` flow on C's matrix engine.  The thesis the
paper establishes for data-center hardware only sharpens at the edge: the
more specialized the accelerated fraction (a GEMM-only NPU being the limit),
the larger the non-GEMM share of end-to-end latency, amplified by fabric-DMA
transfers around every offloaded group.

Declared as two sweep-engine grids (the cross-product baseline plus the
C-only NPU column) so all builds/plans/memory profiles are shared.
"""

from __future__ import annotations

from repro.analysis.common import ExperimentResult, group_share_columns
from repro.models import PAPER_MODELS
from repro.profiler import ProfileResult
from repro.sweep.runner import SweepRunner, SweepResult
from repro.sweep.spec import SweepSpec
from repro.viz.ascii import render_stacked_chart

#: the platform whose NPU column extends the baseline grid.
EDGE_PLATFORM = "C"


def run_ext1(
    platform_ids: tuple[str, ...] = ("A", "B", "C"),
    models: tuple[str, ...] | None = None,
    iterations: int = 3,
    seed: int = 0,
    workers: int = 0,
) -> ExperimentResult:
    models = models or tuple(PAPER_MODELS)
    runner = SweepRunner(workers=workers)
    baseline = runner.run(
        SweepSpec(
            name="ext1-baseline",
            platforms=platform_ids,
            models=models,
            flows=("pytorch",),
            batch_sizes=(1,),
            devices=("cpu", "gpu"),
            iterations=iterations,
            seed=seed,
            order=("platform", "model", "device"),
        )
    )
    npu = None
    if EDGE_PLATFORM in platform_ids:
        npu = runner.run(
            SweepSpec(
                name="ext1-npu",
                platforms=(EDGE_PLATFORM,),
                models=models,
                flows=("npu-offload",),
                batch_sizes=(1,),
                devices=("npu",),
                iterations=iterations,
                seed=seed,
                order=("model",),
            )
        )

    result = ExperimentResult(
        name="ext1_edge_horizon",
        title="Non-GEMM share horizon across platform classes (A/B/C + edge NPU offload)",
    )
    accelerated: dict[str, list[ProfileResult]] = {}
    for sweep in filter(None, (baseline, npu)):
        for record in sweep.records:
            point, profile = record.point, record.profile
            row = {
                "platform": point.platform,
                "model": point.model,
                "flow": point.flow,
                "device": point.device,
                "latency_ms": round(profile.total_latency_ms, 3),
                "gemm_pct": round(100 * profile.gemm_share, 2),
                "non_gemm_pct": round(100 * profile.non_gemm_share, 2),
            }
            row.update(group_share_columns(profile))
            result.rows.append(row)
            if point.device != "cpu":
                key = f"{point.platform}/{point.device}"
                accelerated.setdefault(key, []).append(profile)

    for key, profiles in accelerated.items():
        average = sum(p.non_gemm_share for p in profiles) / len(profiles)
        result.notes.append(f"average accelerated non-GEMM share {key}: {average:.1%}")
    result.chart = _npu_chart(npu)
    return result


def _npu_chart(npu: "SweepResult | None") -> str:
    """Stacked GEMM/non-GEMM bars for the edge NPU column."""
    if npu is None:
        return ""
    bars = []
    for record in npu.records:
        profile = record.profile
        bars.append(
            (
                f"{record.point.model} [C/npu]",
                {"GEMM": profile.gemm_share, "non-GEMM": profile.non_gemm_share},
                f"{profile.total_latency_ms:8.2f} ms",
            )
        )
    return render_stacked_chart(bars) if bars else ""
