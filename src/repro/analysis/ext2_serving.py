"""Extension 2: the serving horizon — non-GEMM cost under load.

The paper measures non-GEMM share for a single inference; this experiment
asks what happens when the same models *serve traffic*.  The paper models
(a vision transformer and an autoregressive LLM) are swept over offered
load — 0.25x, 1x, and 4x of single-stream capacity — on platforms A/B/C
under three batching disciplines (no batching, dynamic batching, continuous
iteration-level batching), through the discrete-event engine in
:mod:`repro.serving`.

Declared as sweep-engine grids using the ``load`` axis (one grid per
scheduler, so every build/plan/batch-cost is shared across all three), with
all randomness seeded from the spec: the committed CSV/txt artifacts are
byte-stable across runs.

What the numbers show:

* tail latency amplifies with load under every discipline, but no-batching
  saturates at single-stream capacity while batching absorbs the 4x load;
* continuous batching dominates dynamic batching on p99 whenever decode
  lengths vary (no head-of-line blocking on the slowest member);
* the non-GEMM horizon *persists under load*: batching amortizes per-kernel
  dispatch, yet even at the largest sustained batch the non-GEMM share of
  busy time stays far above the GEMM-only ideal on every platform class.
"""

from __future__ import annotations

from repro.analysis.common import ExperimentResult
from repro.serving.metrics import ServingResult
from repro.sweep.runner import SweepRunner
from repro.sweep.spec import SweepSpec

#: the serving grid: paper-representative vision + LLM models, three
#: platform classes, three offered loads, three batching disciplines.
SERVING_MODELS = ("vit-b", "gpt2")
SERVING_LOADS = (0.25, 1.0, 4.0)
SERVING_SCHEDULERS = ("fifo", "dynamic", "continuous")


def run_ext2(
    platform_ids: tuple[str, ...] = ("A", "B", "C"),
    models: tuple[str, ...] = SERVING_MODELS,
    loads: tuple[float, ...] = SERVING_LOADS,
    schedulers: tuple[str, ...] = SERVING_SCHEDULERS,
    num_requests: int = 24,
    max_batch: int = 4,
    iterations: int = 3,
    seed: int = 0,
    workers: int = 0,
) -> ExperimentResult:
    runner = SweepRunner(workers=workers)
    result = ExperimentResult(
        name="ext2_serving_horizon",
        title="Serving horizon: tail latency and non-GEMM share vs offered load"
        " (A/B/C, three batching disciplines)",
    )
    chart_bars = []
    for scheduler in schedulers:
        sweep = runner.run(
            SweepSpec(
                name=f"ext2-{scheduler}",
                platforms=platform_ids,
                models=models,
                flows=("pytorch",),
                devices=("gpu",),
                loads=loads,
                scheduler=scheduler,
                trace="poisson",
                num_requests=num_requests,
                max_batch=max_batch,
                #: decode lengths vary 1..4 so iteration-level batching has
                #: head-of-line blocking to remove (vision models reuse the
                #: same step counts as sequential re-invocations).
                decode_steps=(1, 4),
                iterations=iterations,
                seed=seed,
                order=("platform", "model", "load"),
            )
        )
        for record in sweep.records:
            point, profile = record.point, record.profile
            serving: ServingResult = record.serving
            target_util = serving.utilization().get(profile.target, 0.0)
            result.rows.append(
                {
                    "platform": point.platform,
                    "model": point.model,
                    "flow": point.flow,
                    "device": point.device,
                    "scheduler": scheduler,
                    "load": point.load,
                    "offered_rps": round(serving.offered_rate_rps, 3),
                    "throughput_rps": round(serving.throughput_rps, 3),
                    "p50_ms": round(serving.p50_s * 1e3, 4),
                    "p95_ms": round(serving.p95_s * 1e3, 4),
                    "p99_ms": round(serving.p99_s * 1e3, 4),
                    "mean_queue_ms": round(serving.mean_queue_s * 1e3, 4),
                    "mean_batch": round(serving.mean_batch_size, 3),
                    "max_queue_depth": serving.max_queue_depth,
                    "target_util_pct": round(100 * target_util, 2),
                    "non_gemm_busy_pct": round(100 * serving.non_gemm_busy_share, 2),
                    "static_non_gemm_pct": round(100 * profile.non_gemm_share, 2),
                    "energy_j": round(sum(serving.energy_j.values()), 3),
                }
            )
            if scheduler == "continuous" and point.model == "gpt2":
                chart_bars.append(
                    (
                        f"{point.platform} load {point.load:g}",
                        {
                            "GEMM": 1.0 - serving.non_gemm_busy_share,
                            "non-GEMM": serving.non_gemm_busy_share,
                        },
                        f"p99 {serving.p99_s * 1e3:8.2f} ms",
                    )
                )

    result.notes.extend(_horizon_notes(result.rows, platform_ids, loads, schedulers))
    if chart_bars:
        from repro.viz.ascii import render_stacked_chart

        result.chart = render_stacked_chart(chart_bars)
    return result


def _horizon_notes(rows, platform_ids, loads, schedulers) -> list[str]:
    """Per-platform summary lines at the top load."""
    notes = []
    top = max(loads)
    for platform in platform_ids:
        at_top = [r for r in rows if r["platform"] == platform and r["load"] == top]
        if not at_top:
            continue
        share = sum(r["non_gemm_busy_pct"] for r in at_top) / len(at_top)
        notes.append(
            f"platform {platform} @ load {top:g}: average non-GEMM busy share"
            f" {share:.1f}% across schedulers/models"
        )
        if "fifo" in schedulers and "continuous" in schedulers:
            fifo99 = [r["p99_ms"] for r in at_top if r["scheduler"] == "fifo"]
            cont99 = [r["p99_ms"] for r in at_top if r["scheduler"] == "continuous"]
            if fifo99 and cont99:
                ratio = (sum(fifo99) / len(fifo99)) / (sum(cont99) / len(cont99))
                notes.append(
                    f"platform {platform} @ load {top:g}: continuous batching cuts"
                    f" mean p99 {ratio:.1f}x vs no batching"
                )
    return notes
