"""Figure 8: operator fusion — PyTorch vs TorchInductor vs TensorRT.

Swin-t, Swin-b, DETR, SegFormer at batch sizes 1/2/4/8.  Fusion mitigates
but does not eliminate the non-GEMM bottleneck; DETR is the exception
because TensorRT folds 100% of its FrozenBatchNorms into convolutions.
"""

from __future__ import annotations

from repro.analysis.common import ExperimentResult
from repro.sweep.runner import SweepRunner
from repro.sweep.spec import SweepSpec
from repro.viz.ascii import render_stacked_chart

MODELS = ("swin-t", "swin-b", "detr", "segformer")
FLOWS = ("pytorch", "torchinductor", "tensorrt")
BATCHES = (1, 2, 4, 8)


def run_fig8(
    platform_id: str = "A",
    models: tuple[str, ...] = MODELS,
    batch_sizes: tuple[int, ...] = BATCHES,
    iterations: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    spec = SweepSpec(
        name="fig8",
        platforms=(platform_id,),
        models=models,
        flows=FLOWS,
        batch_sizes=batch_sizes,
        iterations=iterations,
        seed=seed,
        order=("model", "batch_size", "flow"),
    )
    result = ExperimentResult(
        name="fig8_fusion",
        title="Latency and GEMM/non-GEMM split across fusion flows (platform A, GPU)",
    )
    bars = []
    first_batch = batch_sizes[0] if batch_sizes else None
    for record in SweepRunner().run(spec).records:
        point, profile = record.point, record.profile
        result.rows.append(
            {
                "model": point.model,
                "flow": point.flow,
                "batch": point.batch_size,
                "latency_ms": round(profile.total_latency_ms, 3),
                "gemm_pct": round(100 * profile.gemm_share, 1),
                "non_gemm_pct": round(100 * profile.non_gemm_share, 1),
                "non_gemm_ms": round(profile.non_gemm_latency_s * 1e3, 3),
                "fusion_rate_pct": round(100 * profile.non_gemm_fusion_rate, 1),
            }
        )
        if point.batch_size == first_batch:
            bars.append(
                (
                    f"{point.model} [{point.flow[:12]}]",
                    {"GEMM": profile.gemm_share, "non-GEMM": profile.non_gemm_share},
                    f"{profile.total_latency_ms:7.2f} ms",
                )
            )
    result.chart = render_stacked_chart(bars)
    return result
