"""Figure 8: operator fusion — PyTorch vs TorchInductor vs TensorRT.

Swin-t, Swin-b, DETR, SegFormer at batch sizes 1/2/4/8.  Fusion mitigates
but does not eliminate the non-GEMM bottleneck; DETR is the exception
because TensorRT folds 100% of its FrozenBatchNorms into convolutions.
"""

from __future__ import annotations

from repro.analysis.common import ExperimentResult
from repro.flows import get_flow
from repro.hardware import get_platform
from repro.models import build_model
from repro.profiler import profile_graph
from repro.viz.ascii import render_stacked_chart

MODELS = ("swin-t", "swin-b", "detr", "segformer")
FLOWS = ("pytorch", "torchinductor", "tensorrt")
BATCHES = (1, 2, 4, 8)


def run_fig8(
    platform_id: str = "A",
    models: tuple[str, ...] = MODELS,
    batch_sizes: tuple[int, ...] = BATCHES,
    iterations: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    platform = get_platform(platform_id)
    result = ExperimentResult(
        name="fig8_fusion",
        title="Latency and GEMM/non-GEMM split across fusion flows (platform A, GPU)",
    )
    bars = []
    for model in models:
        for batch in batch_sizes:
            graph = build_model(model, batch_size=batch)
            for flow_name in FLOWS:
                profile = profile_graph(
                    graph,
                    get_flow(flow_name),
                    platform,
                    use_gpu=True,
                    batch_size=batch,
                    iterations=iterations,
                    seed=seed,
                    model_name=model,
                )
                result.rows.append(
                    {
                        "model": model,
                        "flow": flow_name,
                        "batch": batch,
                        "latency_ms": round(profile.total_latency_ms, 3),
                        "gemm_pct": round(100 * profile.gemm_share, 1),
                        "non_gemm_pct": round(100 * profile.non_gemm_share, 1),
                        "non_gemm_ms": round(profile.non_gemm_latency_s * 1e3, 3),
                        "fusion_rate_pct": round(100 * profile.non_gemm_fusion_rate, 1),
                    }
                )
                if batch == batch_sizes[0]:
                    bars.append(
                        (
                            f"{model} [{flow_name[:12]}]",
                            {"GEMM": profile.gemm_share, "non-GEMM": profile.non_gemm_share},
                            f"{profile.total_latency_ms:7.2f} ms",
                        )
                    )
    result.chart = render_stacked_chart(bars)
    return result
