"""Extension 4: the fleet knee — how many replicas until the tail flattens.

Extension 3 asked how a fixed-size fleet degrades under faults; this
experiment asks the provisioning question ROADMAP item 1 poses: for a given
offered demand, where is the knee in p99 versus fleet size?  Fleets of 1, 2,
4, and 8 replicas of the paper's autoregressive LLM on platform A serve the
same absolute demand under two batching disciplines (no batching,
continuous), at 10⁵ requests per point via the columnar cluster fast path.

The grid is parameterized by **demand** — the offered rate as a fraction of
a *single replica's* capacity — rather than the sweep axis's fleet-relative
``load``.  A fleet of R replicas serving demand D runs at load D/R, so the
absolute arrival rate (and, by common random numbers, the entire arrival
trace) is identical across fleet sizes: every p99-vs-replicas column
compares the same requests against more machines.  Demand 4 crushes one
replica, saturates four, and leaves eight with headroom — the knee is the
smallest fleet whose tail has already flattened onto the 8-replica floor.

Everything is deterministic (seeded trace, seeded policy draws, streaming
capped metrics), so the committed CSV/txt artifacts are byte-stable.
"""

from __future__ import annotations

from repro.analysis.common import ExperimentResult
from repro.serving.metrics import ClusterResult
from repro.sweep.runner import SweepRunner
from repro.sweep.spec import SweepSpec

#: the fleet grid: one LLM on platform A, two disciplines, four fleet sizes,
#: five absolute demand levels (fractions of one replica's capacity).
FLEET_MODELS = ("gpt2",)
FLEET_SCHEDULERS = ("fifo", "continuous")
FLEET_SIZES = (1, 2, 4, 8)
FLEET_DEMANDS = (0.25, 0.5, 1.0, 2.0, 4.0)
FLEET_POLICY = "least-loaded"

#: 10⁵ requests per point (the columnar fast path makes this cheap), with
#: capped streaming metrics so memory stays flat; 100 ms goodput deadline.
NUM_REQUESTS = 100_000
RECORD_CAP = 4096
DEADLINE_S = 0.1
#: the knee tolerance: the knee is the smallest fleet whose p99 is within
#: 20% of the largest fleet's (the flat part of the curve).
KNEE_SLACK = 1.2


def run_ext4(
    platform_ids: tuple[str, ...] = ("A",),
    models: tuple[str, ...] = FLEET_MODELS,
    schedulers: tuple[str, ...] = FLEET_SCHEDULERS,
    fleet_sizes: tuple[int, ...] = FLEET_SIZES,
    demands: tuple[float, ...] = FLEET_DEMANDS,
    num_requests: int = NUM_REQUESTS,
    max_batch: int = 8,
    iterations: int = 3,
    seed: int = 0,
    workers: int = 0,
) -> ExperimentResult:
    runner = SweepRunner(workers=workers)
    result = ExperimentResult(
        name="ext4_fleet_knee",
        title="Fleet knee: p99 vs fleet size at fixed absolute demand"
        " (1/2/4/8 replicas, demands 0.25-4x one replica, two disciplines)",
    )

    for scheduler in schedulers:
        for replicas in fleet_sizes:
            # demand D of one replica's capacity == load D/R of the fleet's,
            # so every fleet size sees the identical arrival trace.
            spec = SweepSpec(
                name=f"ext4-{scheduler}-x{replicas}",
                platforms=platform_ids,
                models=models,
                flows=("pytorch",),
                devices=("gpu",),
                loads=tuple(demand / replicas for demand in demands),
                policies=(FLEET_POLICY,),
                scheduler=scheduler,
                trace="poisson",
                num_requests=num_requests,
                max_batch=max_batch,
                decode_steps=(1, 4),
                num_replicas=replicas,
                deadline_s=DEADLINE_S,
                record_requests=RECORD_CAP,
                iterations=iterations,
                seed=seed,
            )
            for record in runner.run(spec).records:
                point, profile = record.point, record.profile
                cluster: ClusterResult = record.serving
                utils = cluster.utilization()
                target_util = sum(u.get(profile.target, 0.0) for u in utils) / len(utils)
                result.rows.append(
                    {
                        "platform": point.platform,
                        "model": point.model,
                        "scheduler": scheduler,
                        "policy": point.policy,
                        "replicas": replicas,
                        "demand": round(point.load * replicas, 6),
                        "load": round(point.load, 6),
                        "offered_rps": round(cluster.offered_rate_rps, 3),
                        "throughput_rps": round(cluster.throughput_rps, 3),
                        "goodput_pct": round(100 * cluster.goodput, 2),
                        "p50_ms": round(cluster.p50_s * 1e3, 4),
                        "p99_ms": round(cluster.p99_s * 1e3, 4),
                        "mean_target_util_pct": round(100 * target_util, 2),
                        "non_gemm_busy_pct": round(100 * cluster.non_gemm_busy_share, 2),
                        "energy_j": round(cluster.total_energy_j, 3),
                    }
                )

    result.notes.extend(_knee_notes(result.rows, schedulers, fleet_sizes, demands))
    return result


def _knee_notes(rows, schedulers, fleet_sizes, demands) -> list[str]:
    """Narrate, per discipline and demand >= 1, where the p99 curve flattens."""
    notes = []
    largest = max(fleet_sizes)
    for scheduler in schedulers:
        for demand in demands:
            if demand < 1.0:
                continue
            curve = {
                r["replicas"]: r["p99_ms"]
                for r in rows
                if r["scheduler"] == scheduler and r["demand"] == demand
            }
            if largest not in curve or curve[largest] <= 0.0:
                continue
            floor = curve[largest]
            knee = next(
                (
                    size
                    for size in sorted(curve)
                    if curve[size] <= KNEE_SLACK * floor
                ),
                largest,
            )
            shape = " -> ".join(f"{curve[size]:.1f}" for size in sorted(curve))
            notes.append(
                f"{scheduler} demand {demand:g}: p99 {shape} ms across"
                f" {'/'.join(str(s) for s in sorted(curve))} replicas;"
                f" knee at {knee} replicas (within 20% of the {largest}-replica floor)"
            )
    return notes
