"""Shared plumbing for the figure/table experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.ops.base import OpCategory
from repro.profiler.records import GROUP_ORDER, ProfileResult
from repro.viz.ascii import render_table
from repro.viz.csvout import write_csv

Row = dict[str, object]


@dataclass
class ExperimentResult:
    """Rows + rendered text for one regenerated figure or table."""

    name: str
    title: str
    rows: list[Row] = field(default_factory=list)
    chart: str = ""
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        parts = [f"== {self.name}: {self.title} =="]
        if self.chart:
            parts.append(self.chart)
        parts.append(render_table(self.rows))
        parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)

    def save(self, directory: Path | str | None = None) -> Path:
        return write_csv(self.rows, self.name, directory)


def group_share_columns(profile: ProfileResult) -> Row:
    """share_pct columns for every reporting group, zero-filled."""
    shares = profile.share_by_group()
    return {
        _col(group): round(100 * shares.get(group, 0.0), 2) for group in GROUP_ORDER
    }


def ordered_shares(profile: ProfileResult) -> dict[str, float]:
    """Group shares in display order, for stacked-bar rendering."""
    shares = profile.share_by_group()
    return {g.value: shares[g] for g in GROUP_ORDER if shares.get(g, 0.0) > 0.0}


def _col(group: OpCategory) -> str:
    return group.value.lower().replace(" ", "_").replace("-", "_") + "_pct"
