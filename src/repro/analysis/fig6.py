"""Figure 6: the full latency-breakdown grid.

Every paper model x {batch 1, 8} x {CPU-only, CPU+GPU} x {Platform A, B},
PyTorch flow, broken into the ten operator groups of the paper's legend.

The grid is declared as a :class:`~repro.sweep.spec.SweepSpec` and executed
by the sweep engine, which shares model builds, plan lowerings, and memory
profiles across the cross-product (each graph is built once, not once per
platform) and simulates each point vectorized.
"""

from __future__ import annotations

from repro.analysis.common import ExperimentResult, group_share_columns, ordered_shares
from repro.models import PAPER_MODELS, get_model
from repro.profiler import ProfileResult
from repro.sweep.runner import SweepRunner
from repro.sweep.spec import SweepSpec
from repro.viz.ascii import render_stacked_chart


def run_fig6(
    platform_ids: tuple[str, ...] = ("A", "B"),
    models: tuple[str, ...] | None = None,
    batch_sizes: tuple[int, ...] = (1, 8),
    iterations: int = 3,
    seed: int = 0,
    workers: int = 0,
) -> ExperimentResult:
    spec = SweepSpec(
        name="fig6",
        platforms=platform_ids,
        models=models or tuple(PAPER_MODELS),
        flows=("pytorch",),
        batch_sizes=batch_sizes,
        devices=("cpu", "gpu"),
        iterations=iterations,
        seed=seed,
        order=("platform", "model", "batch_size", "device"),
    )
    result = ExperimentResult(
        name="fig6_breakdown",
        title="Operator-group latency breakdown (PyTorch, CPU vs CPU+GPU, platforms A/B)",
    )
    sweep = SweepRunner(workers=workers).run(spec)
    profiles: list[ProfileResult] = []
    domains = {model: get_model(model).domain.value for model in spec.models}
    for record in sweep.records:
        point, profile = record.point, record.profile
        profiles.append(profile)
        row = {
            "platform": point.platform,
            "domain": domains[point.model],
            "model": point.model,
            "batch": point.batch_size,
            "device": "cpu+gpu" if point.use_gpu else "cpu",
            "latency_ms": round(profile.total_latency_ms, 3),
            "non_gemm_pct": round(100 * profile.non_gemm_share, 2),
        }
        row.update(group_share_columns(profile))
        result.rows.append(row)

    gpu_profiles = [p for p in profiles if p.use_gpu]
    cpu_profiles = [p for p in profiles if not p.use_gpu]
    if cpu_profiles and gpu_profiles:
        cpu_avg = sum(p.non_gemm_share for p in cpu_profiles) / len(cpu_profiles)
        gpu_avg = sum(p.non_gemm_share for p in gpu_profiles) / len(gpu_profiles)
        result.notes.append(
            f"average non-GEMM share: CPU-only {cpu_avg:.1%} -> CPU+GPU {gpu_avg:.1%}"
            " (paper: 17.2% -> 42.3%)"
        )
    result.chart = _headline_chart(gpu_profiles, platform_ids, batch_sizes)
    return result


def _headline_chart(
    gpu_profiles: list[ProfileResult],
    platform_ids: tuple[str, ...],
    batch_sizes: tuple[int, ...],
) -> str:
    """Stacked bars for the first platform/batch, falling back when filters
    leave that combination empty (custom model/platform subsets)."""
    if not gpu_profiles:
        return ""

    def bars_for(platform_id: str, batch: int):
        return [
            (
                f"{p.model} b{p.batch_size}",
                ordered_shares(p),
                f"{p.total_latency_ms:8.2f} ms",
            )
            for p in gpu_profiles
            if p.platform.platform_id == platform_id and p.batch_size == batch
        ]

    for platform_id in platform_ids:
        for batch in batch_sizes:
            bars = bars_for(platform_id, batch)
            if bars:
                return render_stacked_chart(bars)
    return ""
