"""Figure 6: the full latency-breakdown grid.

Every paper model x {batch 1, 8} x {CPU-only, CPU+GPU} x {Platform A, B},
PyTorch flow, broken into the ten operator groups of the paper's legend.
"""

from __future__ import annotations

from repro.analysis.common import ExperimentResult, group_share_columns, ordered_shares
from repro.flows import get_flow
from repro.hardware import get_platform
from repro.models import PAPER_MODELS, build_model, get_model
from repro.profiler import ProfileResult, profile_graph
from repro.viz.ascii import render_stacked_chart


def run_fig6(
    platform_ids: tuple[str, ...] = ("A", "B"),
    models: tuple[str, ...] | None = None,
    batch_sizes: tuple[int, ...] = (1, 8),
    iterations: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    flow = get_flow("pytorch")
    result = ExperimentResult(
        name="fig6_breakdown",
        title="Operator-group latency breakdown (PyTorch, CPU vs CPU+GPU, platforms A/B)",
    )
    profiles: list[ProfileResult] = []
    for platform_id in platform_ids:
        platform = get_platform(platform_id)
        for model in models or tuple(PAPER_MODELS):
            domain = get_model(model).domain.value
            for batch in batch_sizes:
                graph = build_model(model, batch_size=batch)
                for use_gpu in (False, True):
                    plat = platform if use_gpu else platform.cpu_only()
                    profile = profile_graph(
                        graph,
                        flow,
                        plat,
                        use_gpu=use_gpu,
                        batch_size=batch,
                        iterations=iterations,
                        seed=seed,
                        model_name=model,
                    )
                    profiles.append(profile)
                    row = {
                        "platform": platform_id,
                        "domain": domain,
                        "model": model,
                        "batch": batch,
                        "device": "cpu+gpu" if use_gpu else "cpu",
                        "latency_ms": round(profile.total_latency_ms, 3),
                        "non_gemm_pct": round(100 * profile.non_gemm_share, 2),
                    }
                    row.update(group_share_columns(profile))
                    result.rows.append(row)

    gpu_profiles = [p for p in profiles if p.use_gpu]
    cpu_profiles = [p for p in profiles if not p.use_gpu]
    if cpu_profiles and gpu_profiles:
        cpu_avg = sum(p.non_gemm_share for p in cpu_profiles) / len(cpu_profiles)
        gpu_avg = sum(p.non_gemm_share for p in gpu_profiles) / len(gpu_profiles)
        result.notes.append(
            f"average non-GEMM share: CPU-only {cpu_avg:.1%} -> CPU+GPU {gpu_avg:.1%}"
            " (paper: 17.2% -> 42.3%)"
        )
    # render the platform-A GPU bars as the headline chart
    bars = [
        (
            f"{p.model} b{p.batch_size}",
            ordered_shares(p),
            f"{p.total_latency_ms:8.2f} ms",
        )
        for p in gpu_profiles
        if p.platform.platform_id == platform_ids[0] and p.batch_size == batch_sizes[0]
    ]
    result.chart = render_stacked_chart(bars)
    return result
