"""Extension 5: autoscaling — cost vs goodput on a bursty arrival trace.

Extension 4 found the static provisioning knee: at demand 4 the p99 of the
continuous-batching fleet flattens by 2-4 replicas, and every further
machine is idle headroom.  This experiment asks the elastic question that
follows: can a feedback controller *discover* that knee online and pay for
it only while the load is there?  Static fleets of 1/2/4/8 replicas and the
three built-in autoscalers (``target-utilization``, ``goodput``, ``step``)
serve the same bursty arrival trace; every row reports tail latency next to
**replica-seconds** — the integral of provisioned capacity over the run,
i.e. the bill.

The grid reuses Extension 4's common-random-numbers trick: demand is a
fraction of a *single* replica's capacity, every config serves the
identical absolute trace, and the autoscaled rows give the controller the
full 8-replica ceiling with a floor of 1.  Static rows ride the columnar
cluster fast path; elastic rows run the reference event loop (scale
evaluations and provisioning live in the event heap), which the fast-path
fallback rails keep bit-identical in the static limit.

The headline is the Pareto chart at demand 4: the SLO-feedback ``goodput``
controller matches the static-4 tail within a few percent at roughly half
the replica-seconds, because it scales on the deadline the operator
actually cares about; both utilization controllers sit at their set-points
well below the ceiling's busy fraction and therefore hold (or flap toward)
the full fleet, buying latency nobody asked for.  Everything is seeded and
streaming-capped, so the committed CSV/txt artifacts are byte-stable.
"""

from __future__ import annotations

from repro.analysis.common import ExperimentResult
from repro.serving.metrics import ClusterResult
from repro.sweep.runner import SweepRunner
from repro.sweep.spec import SweepSpec
from repro.viz.ascii import render_stacked_chart

#: one LLM on platform A under continuous batching — the discipline that
#: owns the serving regime — with least-loaded admission.
AUTOSCALE_MODELS = ("gpt2",)
AUTOSCALE_SCHEDULER = "continuous"
AUTOSCALE_POLICY = "least-loaded"
AUTOSCALE_TRACE = "bursty"

#: static fleet sizes vs the elastic controllers (floor 1, ceiling 8).
STATIC_FLEETS = (1, 2, 4, 8)
CONTROLLERS = ("target-utilization", "goodput", "step")
CEILING = 8
FLOOR = 1

#: absolute demand as a fraction of one replica's capacity; demand 4 is the
#: ext4 operating point where the static knee sits between 2 and 4 replicas.
AUTOSCALE_DEMANDS = (1.0, 2.0, 4.0)
HEADLINE_DEMAND = 4.0
HEADLINE_STATIC = 4

#: controller timing: evaluate every 100 ms, no cooldown, 100 ms cold-start.
INTERVAL_S = 0.1
COOLDOWN_S = 0.0
PROVISION_S = 0.1

#: 3x10^4 requests per point with capped streaming metrics; the 100 ms
#: goodput deadline doubles as the SLO the goodput controller tracks.
NUM_REQUESTS = 30_000
RECORD_CAP = 4096
DEADLINE_S = 0.1


def run_ext5(
    platform_ids: tuple[str, ...] = ("A",),
    models: tuple[str, ...] = AUTOSCALE_MODELS,
    static_fleets: tuple[int, ...] = STATIC_FLEETS,
    controllers: tuple[str, ...] = CONTROLLERS,
    demands: tuple[float, ...] = AUTOSCALE_DEMANDS,
    num_requests: int = NUM_REQUESTS,
    max_batch: int = 8,
    iterations: int = 3,
    seed: int = 0,
    workers: int = 0,
) -> ExperimentResult:
    runner = SweepRunner(workers=workers)
    result = ExperimentResult(
        name="ext5_autoscale",
        title="Autoscaling: p99 vs replica-seconds on a bursty trace"
        " (static 1/2/4/8 fleets vs three feedback controllers, ceiling 8)",
    )

    def serve(spec: SweepSpec, config: str, replicas: int) -> None:
        for record in runner.run(spec).records:
            point = record.point
            cluster: ClusterResult = record.serving
            ups = sum(1 for e in cluster.scale_events if e.action == "up")
            downs = sum(1 for e in cluster.scale_events if e.action == "down")
            # mean busy fraction of each replica's own online window,
            # over replicas that ever came online (spent a nonzero span).
            utils = cluster.active_utilization()
            spans = cluster.replica_active_s
            online = [
                sum(utils[i].values())
                for i in range(len(utils))
                if i >= len(spans) or spans[i] > 0.0
            ]
            active_util = sum(online) / len(online) if online else 0.0
            result.rows.append(
                {
                    "config": config,
                    "platform": point.platform,
                    "model": point.model,
                    "replicas": replicas,
                    "demand": round(point.load * replicas, 6),
                    "offered_rps": round(cluster.offered_rate_rps, 3),
                    "throughput_rps": round(cluster.throughput_rps, 3),
                    "goodput_pct": round(100 * cluster.goodput, 2),
                    "p50_ms": round(cluster.p50_s * 1e3, 4),
                    "p99_ms": round(cluster.p99_s * 1e3, 4),
                    "mean_replicas": round(cluster.mean_replicas, 3),
                    "replica_seconds": round(cluster.replica_seconds, 3),
                    "scale_ups": ups,
                    "scale_downs": downs,
                    "active_util_pct": round(100 * active_util, 2),
                }
            )

    common = dict(
        platforms=platform_ids,
        models=models,
        flows=("pytorch",),
        devices=("gpu",),
        policies=(AUTOSCALE_POLICY,),
        scheduler=AUTOSCALE_SCHEDULER,
        trace=AUTOSCALE_TRACE,
        num_requests=num_requests,
        max_batch=max_batch,
        decode_steps=(1, 4),
        deadline_s=DEADLINE_S,
        record_requests=RECORD_CAP,
        iterations=iterations,
        seed=seed,
    )
    for replicas in static_fleets:
        # demand D of one replica == load D/R of the fleet: common random
        # numbers across fleet sizes and controllers (same trick as ext4).
        serve(
            SweepSpec(
                name=f"ext5-static-x{replicas}",
                loads=tuple(demand / replicas for demand in demands),
                num_replicas=replicas,
                **common,
            ),
            config=f"static-{replicas}",
            replicas=replicas,
        )
    for controller in controllers:
        serve(
            SweepSpec(
                name=f"ext5-{controller}",
                loads=tuple(demand / CEILING for demand in demands),
                num_replicas=CEILING,
                autoscalers=(controller,),
                autoscale_min_replicas=FLOOR,
                autoscale_interval_s=INTERVAL_S,
                autoscale_cooldown_s=COOLDOWN_S,
                autoscale_provision_s=PROVISION_S,
                **common,
            ),
            config=controller,
            replicas=CEILING,
        )

    result.chart = _pareto_chart(result.rows)
    result.notes.extend(_headline_notes(result.rows))
    return result


def _pareto_chart(rows) -> str:
    """Replica-seconds bars at the headline demand, annotated with p99."""
    at_knee = [r for r in rows if r["demand"] == HEADLINE_DEMAND]
    if not at_knee:
        return ""
    ceiling = max(r["replica_seconds"] for r in at_knee)
    bars = []
    for row in sorted(at_knee, key=lambda r: r["replica_seconds"]):
        bars.append(
            (
                str(row["config"]),
                {"replica-seconds": row["replica_seconds"] / ceiling},
                f"{row['replica_seconds']:8.1f} rs  p99 {row['p99_ms']:7.2f} ms"
                f"  goodput {row['goodput_pct']:5.1f}%",
            )
        )
    return (
        f"cost vs tail at demand {HEADLINE_DEMAND:g} (bursty arrivals):\n"
        + render_stacked_chart(bars)
    )


def _headline_notes(rows) -> list[str]:
    """Narrate the goodput-vs-static comparison and the controller split."""

    def row(config, demand):
        matched = [
            r for r in rows if r["config"] == config and r["demand"] == demand
        ]
        return matched[0] if matched else None

    notes = []
    static = row(f"static-{HEADLINE_STATIC}", HEADLINE_DEMAND)
    elastic = row("goodput", HEADLINE_DEMAND)
    if static and elastic and static["p99_ms"] > 0:
        p99_delta = 100 * (elastic["p99_ms"] / static["p99_ms"] - 1.0)
        savings = 100 * (1.0 - elastic["replica_seconds"] / static["replica_seconds"])
        notes.append(
            f"demand {HEADLINE_DEMAND:g}: goodput controller p99"
            f" {elastic['p99_ms']:.2f} ms vs static-{HEADLINE_STATIC}"
            f" {static['p99_ms']:.2f} ms ({p99_delta:+.1f}%) at"
            f" {savings:.1f}% fewer replica-seconds"
            f" ({elastic['replica_seconds']:.1f} vs"
            f" {static['replica_seconds']:.1f}; mean"
            f" {elastic['mean_replicas']:.2f} of {CEILING} replicas)"
        )
    for controller in CONTROLLERS:
        r = row(controller, HEADLINE_DEMAND)
        if r is None:
            continue
        notes.append(
            f"{controller} at demand {HEADLINE_DEMAND:g}: mean"
            f" {r['mean_replicas']:.2f} replicas,"
            f" {r['scale_ups']} up / {r['scale_downs']} down,"
            f" active-time utilization {r['active_util_pct']:.1f}%"
        )
    return notes
