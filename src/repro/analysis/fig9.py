"""Figure 9: LLM.int8() quantization vs sequence length on Llama-3 8B.

FP16 baseline vs int8-quantized graphs at sequence lengths 512..8192 on
Platform A.  The paper's findings reproduced here: quantization accelerates
GEMMs but injects thousands of Q/DQ and scaling operators, flipping the
profile to non-GEMM dominated, and the element-wise share grows with
sequence length.

The quantization pass runs as the sweep engine's registered ``llm-int8``
graph transform, so each sequence length's rewritten graph is produced once
and shared by any grid that profiles it.
"""

from __future__ import annotations

from repro.analysis.common import ExperimentResult, group_share_columns, ordered_shares
from repro.sweep.runner import SweepRunner
from repro.sweep.spec import SweepSpec
from repro.viz.ascii import render_stacked_chart

SEQ_LENGTHS = (512, 1024, 2048, 4096, 8192)


def run_fig9(
    platform_id: str = "A",
    seq_lengths: tuple[int, ...] = SEQ_LENGTHS,
    iterations: int = 3,
    seed: int = 0,
    model: str = "llama3-8b",
) -> ExperimentResult:
    spec = SweepSpec(
        name="fig9",
        platforms=(platform_id,),
        models=(model,),
        flows=("pytorch",),
        batch_sizes=(1,),
        seq_lens=seq_lengths,
        transforms=(None, "llm-int8"),
        iterations=iterations,
        seed=seed,
        order=("seq_len", "transform"),
    )
    result = ExperimentResult(
        name="fig9_quantization",
        title=f"FP16 vs LLM.int8() breakdown on {model} across sequence lengths",
    )
    bars = []
    fp_non_gemm: list[float] = []
    q_non_gemm: list[float] = []
    for record in SweepRunner().run(spec).records:
        point, profile = record.point, record.profile
        precision = "int8" if point.transform else "fp16"
        row = {
            "seq_len": point.seq_len,
            "precision": precision,
            "latency_ms": round(profile.total_latency_ms, 2),
            "gemm_ms": round(profile.gemm_latency_s * 1e3, 2),
            "non_gemm_pct": round(100 * profile.non_gemm_share, 2),
        }
        row.update(group_share_columns(profile))
        if precision == "int8":
            row["ops_added"] = record.transform_stats.ops_added
            q_non_gemm.append(profile.non_gemm_share)
        else:
            fp_non_gemm.append(profile.non_gemm_share)
        result.rows.append(row)
        bars.append(
            (
                f"seq {point.seq_len} [{precision}]",
                ordered_shares(profile),
                f"{profile.total_latency_ms:8.1f} ms",
            )
        )
    result.chart = render_stacked_chart(bars)
    result.notes.append(
        f"avg non-GEMM share: fp16 {sum(fp_non_gemm) / len(fp_non_gemm):.1%} ->"
        f" int8 {sum(q_non_gemm) / len(q_non_gemm):.1%} (paper: 29.3% -> 76.7%)"
    )
    return result
