"""Figure 9: LLM.int8() quantization vs sequence length on Llama-3 8B.

FP16 baseline vs int8-quantized graphs at sequence lengths 512..8192 on
Platform A.  The paper's findings reproduced here: quantization accelerates
GEMMs but injects thousands of Q/DQ and scaling operators, flipping the
profile to non-GEMM dominated, and the element-wise share grows with
sequence length.
"""

from __future__ import annotations

from repro.analysis.common import ExperimentResult, group_share_columns, ordered_shares
from repro.flows import get_flow
from repro.hardware import get_platform
from repro.models import build_model
from repro.profiler import profile_graph
from repro.quant import quantize_llm_int8
from repro.viz.ascii import render_stacked_chart

SEQ_LENGTHS = (512, 1024, 2048, 4096, 8192)


def run_fig9(
    platform_id: str = "A",
    seq_lengths: tuple[int, ...] = SEQ_LENGTHS,
    iterations: int = 3,
    seed: int = 0,
    model: str = "llama3-8b",
) -> ExperimentResult:
    platform = get_platform(platform_id)
    flow = get_flow("pytorch")
    result = ExperimentResult(
        name="fig9_quantization",
        title=f"FP16 vs LLM.int8() breakdown on {model} across sequence lengths",
    )
    bars = []
    fp_non_gemm: list[float] = []
    q_non_gemm: list[float] = []
    for seq in seq_lengths:
        graph = build_model(model, batch_size=1, seq_len=seq)
        quantized = quantize_llm_int8(graph)
        for precision, g in (("fp16", graph), ("int8", quantized.graph)):
            profile = profile_graph(
                g,
                flow,
                platform,
                use_gpu=True,
                iterations=iterations,
                seed=seed,
                model_name=f"{model}-{precision}",
            )
            row = {
                "seq_len": seq,
                "precision": precision,
                "latency_ms": round(profile.total_latency_ms, 2),
                "gemm_ms": round(profile.gemm_latency_s * 1e3, 2),
                "non_gemm_pct": round(100 * profile.non_gemm_share, 2),
            }
            row.update(group_share_columns(profile))
            if precision == "int8":
                row["ops_added"] = quantized.stats.ops_added
                q_non_gemm.append(profile.non_gemm_share)
            else:
                fp_non_gemm.append(profile.non_gemm_share)
            result.rows.append(row)
            bars.append(
                (
                    f"seq {seq} [{precision}]",
                    ordered_shares(profile),
                    f"{profile.total_latency_ms:8.1f} ms",
                )
            )
    result.chart = render_stacked_chart(bars)
    result.notes.append(
        f"avg non-GEMM share: fp16 {sum(fp_non_gemm) / len(fp_non_gemm):.1%} ->"
        f" int8 {sum(q_non_gemm) / len(q_non_gemm):.1%} (paper: 29.3% -> 76.7%)"
    )
    return result
