"""Extension 3: the fault horizon — tail latency and goodput under failures.

Extension 2 established that the non-GEMM horizon persists under load on a
healthy server; this experiment asks what happens when the fleet *fails*.
Three-replica fleets of the paper's autoregressive LLM on platforms A/B/C
serve offered load 1.0 (of fleet capacity) under two batching disciplines
(no batching, continuous) while a seeded fault injector drives three
profiles — ``none``, ``crash`` (one replica down for ~a quarter of the run,
lost work re-routed by timeout retries), and ``straggler`` (~15% of
dispatches 2-6x slow) — across all three admission policies.

Two focused studies ride along on platform A:

* **graceful degradation** — the same crash scenario with and without
  admission control (``shed_queue_s``).  With shedding, requests that would
  have queued behind the outage are rejected up front; both goodput
  (completed within deadline / all requests, shed counted against) and
  p99-of-admitted beat the no-shedding configuration at load >= 1.
* **hedging** — the straggler scenario at half load (continuous batching;
  duplicates need capacity headroom) with and without hedged dispatch; hedge
  wins show duplicates rescuing requests stuck behind slow dispatches.

Everything is deterministic (seeded trace, seeded fault schedule, seeded
policy draws), so the committed CSV/txt artifacts are byte-stable.
"""

from __future__ import annotations

from repro.analysis.common import ExperimentResult
from repro.serving.metrics import ClusterResult
from repro.sweep.runner import SweepRunner
from repro.sweep.spec import SweepSpec

#: the fault grid: one LLM, three platform fleets, two disciplines, the
#: three headline fault profiles, all registered policies.
FAULT_MODELS = ("gpt2",)
FAULT_SCHEDULERS = ("fifo", "continuous")
FAULT_PROFILES = ("none", "crash", "straggler")
FAULT_POLICIES = ("round-robin", "least-loaded", "power-of-two-choices")

#: shared cluster knobs: a 3-replica fleet at fleet-capacity load, 20 ms
#: detection timeout doubling to a 320 ms cap, 100 ms goodput deadline.
NUM_REPLICAS = 3
CLUSTER_LOAD = 1.0
TIMEOUT_S = 0.02
TIMEOUT_CAP_S = 0.32
DEADLINE_S = 0.1
FAULT_SEED = 3
#: degradation study: shed when estimated queue delay exceeds 20 ms.
SHED_QUEUE_S = 0.02
#: hedging study: duplicate a request outstanding for 20 ms, at half load
#: (duplicates need capacity headroom to help rather than add pressure).
HEDGE_AFTER_S = 0.02
HEDGE_LOAD = 0.5


def run_ext3(
    platform_ids: tuple[str, ...] = ("A", "B", "C"),
    models: tuple[str, ...] = FAULT_MODELS,
    schedulers: tuple[str, ...] = FAULT_SCHEDULERS,
    fault_profiles: tuple[str, ...] = FAULT_PROFILES,
    policies: tuple[str, ...] = FAULT_POLICIES,
    num_requests: int = 48,
    max_batch: int = 4,
    iterations: int = 3,
    seed: int = 0,
    workers: int = 0,
) -> ExperimentResult:
    runner = SweepRunner(workers=workers)
    result = ExperimentResult(
        name="ext3_fault_horizon",
        title="Fault horizon: goodput and tail latency of 3-replica fleets"
        " under crash/straggler faults (A/B/C, two disciplines, three policies)",
    )

    def base_spec(scheduler: str, **overrides) -> SweepSpec:
        defaults = dict(
            platforms=platform_ids,
            models=models,
            flows=("pytorch",),
            devices=("gpu",),
            loads=(CLUSTER_LOAD,),
            policies=policies,
            fault_profiles=fault_profiles,
            scheduler=scheduler,
            trace="poisson",
            num_requests=num_requests,
            max_batch=max_batch,
            decode_steps=(1, 4),
            num_replicas=NUM_REPLICAS,
            fault_seed=FAULT_SEED,
            timeout_s=TIMEOUT_S,
            timeout_cap_s=TIMEOUT_CAP_S,
            deadline_s=DEADLINE_S,
            iterations=iterations,
            seed=seed,
            order=("platform", "model", "policy", "fault"),
        )
        defaults.update(overrides)
        return SweepSpec(name=f"ext3-{scheduler}", **defaults)

    def add_rows(sweep, scheduler: str, variant: str) -> list[dict]:
        added = []
        for record in sweep.records:
            point, profile = record.point, record.profile
            cluster: ClusterResult = record.serving
            utils = cluster.utilization()
            target_util = sum(u.get(profile.target, 0.0) for u in utils) / len(utils)
            row = {
                "platform": point.platform,
                "model": point.model,
                "scheduler": scheduler,
                "policy": point.policy,
                "fault": point.fault_profile or "none",
                "variant": variant,
                "load": point.load,
                "replicas": point.num_replicas,
                "offered_rps": round(cluster.offered_rate_rps, 3),
                "throughput_rps": round(cluster.throughput_rps, 3),
                "goodput_pct": round(100 * cluster.goodput, 2),
                "p50_ms": round(cluster.p50_s * 1e3, 4),
                "p99_ms": round(cluster.p99_s * 1e3, 4),
                "shed": cluster.num_shed,
                "failed": cluster.num_failed,
                "retries": cluster.num_retries,
                "hedges": cluster.num_hedges,
                "hedge_wins": cluster.num_hedge_wins,
                "recovery_ms": round(cluster.time_to_recovery_s * 1e3, 4),
                "mean_target_util_pct": round(100 * target_util, 2),
                "non_gemm_busy_pct": round(100 * cluster.non_gemm_busy_share, 2),
                "energy_j": round(cluster.total_energy_j, 3),
            }
            result.rows.append(row)
            added.append(row)
        return added

    for scheduler in schedulers:
        add_rows(runner.run(base_spec(scheduler)), scheduler, "baseline")

    # -- graceful degradation study (platform A fleet, no batching) ----------
    degradation = {}
    for variant, shed_queue_s in (("no-shed", None), ("shed", SHED_QUEUE_S)):
        sweep = runner.run(
            base_spec(
                "fifo",
                platforms=platform_ids[:1],
                policies=("least-loaded",),
                fault_profiles=("crash",),
                shed_queue_s=shed_queue_s,
            ).subset(name=f"ext3-degradation-{variant}")
        )
        (degradation[variant],) = add_rows(sweep, "fifo", variant)

    # -- hedging study (platform A fleet, continuous batching, stragglers) ---
    hedging = {}
    for variant, hedge_after_s in (("no-hedge", None), ("hedge", HEDGE_AFTER_S)):
        sweep = runner.run(
            base_spec(
                "continuous",
                platforms=platform_ids[:1],
                loads=(HEDGE_LOAD,),
                policies=("least-loaded",),
                fault_profiles=("straggler",),
                hedge_after_s=hedge_after_s,
            ).subset(name=f"ext3-hedging-{variant}")
        )
        (hedging[variant],) = add_rows(sweep, "continuous", variant)

    result.notes.extend(
        _fault_notes(result.rows, platform_ids, schedulers, degradation, hedging)
    )
    return result


def _fault_notes(rows, platform_ids, schedulers, degradation, hedging) -> list[str]:
    notes = []
    baseline = [r for r in rows if r["variant"] == "baseline"]
    for platform in platform_ids:
        for scheduler in schedulers:
            subset = [
                r
                for r in baseline
                if r["platform"] == platform and r["scheduler"] == scheduler
            ]
            if not subset:
                continue
            healthy = [r for r in subset if r["fault"] == "none"]
            crashed = [r for r in subset if r["fault"] == "crash"]
            if healthy and crashed:
                h99 = sum(r["p99_ms"] for r in healthy) / len(healthy)
                c99 = sum(r["p99_ms"] for r in crashed) / len(crashed)
                recovery = max(r["recovery_ms"] for r in crashed)
                notes.append(
                    f"platform {platform} {scheduler}: a crash inflates mean"
                    f" p99 {c99 / h99:.1f}x ({h99:.1f} -> {c99:.1f} ms);"
                    f" worst time-to-recovery {recovery:.1f} ms"
                )
    shed, no_shed = degradation.get("shed"), degradation.get("no-shed")
    if shed and no_shed:
        notes.append(
            "graceful degradation (crash, fifo, load"
            f" {shed['load']:g}): shedding {shed['shed']} requests lifts goodput"
            f" {no_shed['goodput_pct']:.1f}% -> {shed['goodput_pct']:.1f}% and cuts"
            f" p99-of-admitted {no_shed['p99_ms']:.1f} -> {shed['p99_ms']:.1f} ms"
            " vs no shedding"
        )
    hedge, no_hedge = hedging.get("hedge"), hedging.get("no-hedge")
    if hedge and no_hedge:
        notes.append(
            f"hedging (straggler, continuous): {hedge['hedge_wins']} of"
            f" {hedge['hedges']} hedges win, p99"
            f" {no_hedge['p99_ms']:.1f} -> {hedge['p99_ms']:.1f} ms"
        )
    return notes
