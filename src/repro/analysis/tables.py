"""Tables I, IV, and V of the paper.

* Table I  — the non-GEMM operator taxonomy with example captured shapes.
* Table IV — most time-consuming non-GEMM group per model (platform A,
  GPU, averaged over batch sizes).
* Table V  — TensorRT fusion rate and non-GEMM latency before/after fusion.

Tables IV and V declare their grids as sweep specs; Table I is static (no
profiling) but pulls its graphs from the sweep engine's build cache so
taxonomy extraction shares work with any profiling sweep of the same models.
"""

from __future__ import annotations

from repro.analysis.common import ExperimentResult
from repro.core.reports import NonGemmReport
from repro.models import PAPER_MODELS
from repro.profiler import ProfileResult, dominant_group_table
from repro.sweep.cache import cached_build_model
from repro.sweep.runner import SweepRunner
from repro.sweep.spec import SweepSpec

#: the eight model variants Table I draws its examples from
TABLE1_MODELS = ("detr", "vit-l", "gpt2-xl", "llama2-7b", "segformer", "mask-rcnn", "swin-b", "bert")


def run_table1(models: tuple[str, ...] = TABLE1_MODELS) -> ExperimentResult:
    result = ExperimentResult(
        name="table1_taxonomy",
        title="Non-GEMM operator taxonomy with example input shapes (Table I)",
    )
    for model in models:
        graph = cached_build_model(model, batch_size=1)
        report = NonGemmReport(graph)
        result.rows.extend(report.taxonomy_rows(unique=True))
    return result


def run_table4(
    platform_id: str = "A",
    models: tuple[str, ...] | None = None,
    batch_sizes: tuple[int, ...] = (1, 8),
    iterations: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    spec = SweepSpec(
        name="table4",
        platforms=(platform_id,),
        models=models or tuple(PAPER_MODELS),
        flows=("pytorch",),
        batch_sizes=batch_sizes,
        iterations=iterations,
        seed=seed,
        order=("model", "batch_size"),
    )
    result = ExperimentResult(
        name="table4_dominant_groups",
        title="Most time-consuming non-GEMM group per model (platform A, GPU, batch-avg)",
    )
    profiles: dict[str, list[ProfileResult]] = {}
    for record in SweepRunner().run(spec).records:
        profiles.setdefault(record.point.model, []).append(record.profile)
    for model, group, share in dominant_group_table(profiles):
        result.rows.append(
            {
                "model": model,
                "operator_group": group.value,
                "latency_pct": round(100 * share, 1),
            }
        )
    return result


def run_table5(
    platform_id: str = "A",
    models: tuple[str, ...] = ("swin-t", "swin-b", "detr", "segformer"),
    batch_sizes: tuple[int, ...] = (1, 2, 4, 8),
    iterations: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    spec = SweepSpec(
        name="table5",
        platforms=(platform_id,),
        models=models,
        flows=("pytorch", "tensorrt"),
        batch_sizes=batch_sizes,
        iterations=iterations,
        seed=seed,
        order=("model", "batch_size", "flow"),
    )
    result = ExperimentResult(
        name="table5_fusion_rate",
        title="TensorRT non-GEMM fusion rate and latency before/after (Table V)",
    )
    by_model: dict[str, dict[str, list[ProfileResult]]] = {}
    for record in SweepRunner().run(spec).records:
        by_model.setdefault(record.point.model, {}).setdefault(
            record.point.flow, []
        ).append(record.profile)
    for model in models:
        base_runs = by_model[model]["pytorch"]
        fused_runs = by_model[model]["tensorrt"]
        before_ms = [p.non_gemm_latency_s * 1e3 for p in base_runs]
        before_pct = [100 * p.non_gemm_share for p in base_runs]
        after_ms = [p.non_gemm_latency_s * 1e3 for p in fused_runs]
        after_pct = [100 * p.non_gemm_share for p in fused_runs]
        rates = [100 * p.non_gemm_fusion_rate for p in fused_runs]
        n = len(batch_sizes)
        speedup = (sum(before_ms) / n) / max(sum(after_ms) / n, 1e-9)
        result.rows.append(
            {
                "model": model,
                "fusion_rate_pct": round(sum(rates) / n, 1),
                "non_gemm_before_ms": round(sum(before_ms) / n, 2),
                "non_gemm_before_pct": round(sum(before_pct) / n, 1),
                "non_gemm_after_ms": round(sum(after_ms) / n, 2),
                "non_gemm_after_pct": round(sum(after_pct) / n, 1),
                "non_gemm_speedup": round(speedup, 2),
            }
        )
    return result
