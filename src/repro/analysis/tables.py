"""Tables I, IV, and V of the paper.

* Table I  — the non-GEMM operator taxonomy with example captured shapes.
* Table IV — most time-consuming non-GEMM group per model (platform A,
  GPU, averaged over batch sizes).
* Table V  — TensorRT fusion rate and non-GEMM latency before/after fusion.
"""

from __future__ import annotations

from repro.analysis.common import ExperimentResult
from repro.core.reports import NonGemmReport
from repro.flows import get_flow
from repro.hardware import get_platform
from repro.models import PAPER_MODELS, build_model
from repro.profiler import ProfileResult, dominant_group_table, profile_graph

#: the eight model variants Table I draws its examples from
TABLE1_MODELS = ("detr", "vit-l", "gpt2-xl", "llama2-7b", "segformer", "mask-rcnn", "swin-b", "bert")


def run_table1(models: tuple[str, ...] = TABLE1_MODELS) -> ExperimentResult:
    result = ExperimentResult(
        name="table1_taxonomy",
        title="Non-GEMM operator taxonomy with example input shapes (Table I)",
    )
    for model in models:
        graph = build_model(model, batch_size=1)
        report = NonGemmReport(graph)
        result.rows.extend(report.taxonomy_rows(unique=True))
    return result


def run_table4(
    platform_id: str = "A",
    models: tuple[str, ...] | None = None,
    batch_sizes: tuple[int, ...] = (1, 8),
    iterations: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    platform = get_platform(platform_id)
    flow = get_flow("pytorch")
    result = ExperimentResult(
        name="table4_dominant_groups",
        title="Most time-consuming non-GEMM group per model (platform A, GPU, batch-avg)",
    )
    profiles: dict[str, list[ProfileResult]] = {}
    for model in models or tuple(PAPER_MODELS):
        runs = []
        for batch in batch_sizes:
            graph = build_model(model, batch_size=batch)
            runs.append(
                profile_graph(
                    graph,
                    flow,
                    platform,
                    use_gpu=True,
                    batch_size=batch,
                    iterations=iterations,
                    seed=seed,
                    model_name=model,
                )
            )
        profiles[model] = runs
    for model, group, share in dominant_group_table(profiles):
        result.rows.append(
            {
                "model": model,
                "operator_group": group.value,
                "latency_pct": round(100 * share, 1),
            }
        )
    return result


def run_table5(
    platform_id: str = "A",
    models: tuple[str, ...] = ("swin-t", "swin-b", "detr", "segformer"),
    batch_sizes: tuple[int, ...] = (1, 2, 4, 8),
    iterations: int = 3,
    seed: int = 0,
) -> ExperimentResult:
    platform = get_platform(platform_id)
    eager = get_flow("pytorch")
    trt = get_flow("tensorrt")
    result = ExperimentResult(
        name="table5_fusion_rate",
        title="TensorRT non-GEMM fusion rate and latency before/after (Table V)",
    )
    for model in models:
        before_ms: list[float] = []
        before_pct: list[float] = []
        after_ms: list[float] = []
        after_pct: list[float] = []
        rates: list[float] = []
        for batch in batch_sizes:
            graph = build_model(model, batch_size=batch)
            base = profile_graph(
                graph, eager, platform, use_gpu=True, batch_size=batch,
                iterations=iterations, seed=seed, model_name=model,
            )
            fused = profile_graph(
                graph, trt, platform, use_gpu=True, batch_size=batch,
                iterations=iterations, seed=seed, model_name=model,
            )
            before_ms.append(base.non_gemm_latency_s * 1e3)
            before_pct.append(100 * base.non_gemm_share)
            after_ms.append(fused.non_gemm_latency_s * 1e3)
            after_pct.append(100 * fused.non_gemm_share)
            rates.append(100 * fused.non_gemm_fusion_rate)
        n = len(batch_sizes)
        speedup = (sum(before_ms) / n) / max(sum(after_ms) / n, 1e-9)
        result.rows.append(
            {
                "model": model,
                "fusion_rate_pct": round(sum(rates) / n, 1),
                "non_gemm_before_ms": round(sum(before_ms) / n, 2),
                "non_gemm_before_pct": round(sum(before_pct) / n, 1),
                "non_gemm_after_ms": round(sum(after_ms) / n, 2),
                "non_gemm_after_pct": round(sum(after_pct) / n, 1),
                "non_gemm_speedup": round(speedup, 2),
            }
        )
    return result
