"""Text rendering and CSV output helpers."""

from repro.viz.ascii import render_stacked_bar, render_stacked_chart, render_table
from repro.viz.csvout import RESULTS_DIR, write_csv

__all__ = [
    "RESULTS_DIR",
    "render_stacked_bar",
    "render_stacked_chart",
    "render_table",
    "write_csv",
]
