"""CSV output for experiment results (the artifact's csv data files)."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence

#: default output directory, mirroring the artifact's layout
RESULTS_DIR = Path("results")


def write_csv(
    rows: Sequence[Mapping[str, object]],
    name: str,
    directory: Path | str | None = None,
) -> Path:
    """Write dict rows as ``<directory>/<name>.csv``; returns the path."""
    out_dir = Path(directory) if directory is not None else RESULTS_DIR
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"{name}.csv"
    if not rows:
        path.write_text("")
        return path
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        for row in rows:
            writer.writerow({k: _cell(v) for k, v in row.items()})
    return path


def _cell(value: object) -> object:
    if isinstance(value, (list, tuple)):
        return "x".join(str(v) for v in value)
    return value
