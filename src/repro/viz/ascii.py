"""ASCII rendering of tables and stacked bars (matplotlib-free environment).

Every experiment harness prints its result with these helpers in addition
to writing CSV, so the paper's figures are readable straight off stdout.
"""

from __future__ import annotations

from typing import Mapping, Sequence

BAR_CHARS = "#*=+~o.:-%"


def render_table(rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None) -> str:
    """Fixed-width text table from dict rows."""
    if not rows:
        return "(empty)"
    cols = list(columns) if columns else list(rows[0].keys())
    widths = {c: max(len(str(c)), *(len(_fmt(r.get(c))) for r in rows)) for c in cols}
    header = "  ".join(str(c).ljust(widths[c]) for c in cols)
    sep = "  ".join("-" * widths[c] for c in cols)
    lines = [header, sep]
    for row in rows:
        lines.append("  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in cols))
    return "\n".join(lines)


def render_stacked_bar(
    label: str,
    shares: Mapping[str, float],
    width: int = 60,
    total_label: str = "",
) -> str:
    """One horizontal stacked bar, one glyph class per segment."""
    segments = []
    for i, (name, share) in enumerate(shares.items()):
        cells = round(share * width)
        if cells <= 0 and share > 0:
            cells = 1
        segments.append(BAR_CHARS[i % len(BAR_CHARS)] * cells)
    bar = "".join(segments)[:width].ljust(width)
    return f"{label:<24s} |{bar}| {total_label}"


def render_stacked_chart(
    bars: Sequence[tuple[str, Mapping[str, float], str]],
    width: int = 60,
) -> str:
    """Multiple stacked bars plus a glyph legend.

    ``bars`` holds (label, shares-in-display-order, right-hand annotation).
    """
    if not bars:
        return "(empty)"
    lines = [render_stacked_bar(label, shares, width, note) for label, shares, note in bars]
    legend_names: list[str] = []
    for _, shares, _ in bars:
        for name in shares:
            if name not in legend_names:
                legend_names.append(name)
    legend = "   ".join(
        f"{BAR_CHARS[_first_index(bars, n) % len(BAR_CHARS)]}={n}" for n in legend_names
    )
    return "\n".join(lines + ["legend: " + legend])


def _first_index(bars, name: str) -> int:
    for _, shares, _ in bars:
        ordered = list(shares)
        if name in ordered:
            return ordered.index(name)
    return 0


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    if value is None:
        return ""
    return str(value)
